type params = {
  n : int;
  q_primes : int list;
  t : int;
  sigma : float;
}

(* NTT-friendly primes: 119*2^23+1 and 45*2^24+1. *)
let prime_a = 998244353
let prime_b = 754974721

let find_plaintext_modulus ~n ~min_t =
  let step = 2 * n in
  let rec go t = if t >= min_t && Field.is_prime t then t else go (t + step) in
  go (step + 1)

let validate p =
  if p.n <= 0 || p.n land (p.n - 1) <> 0 then
    invalid_arg "Bgv: n must be a power of two";
  List.iter
    (fun q ->
      if not (Field.is_prime q) then invalid_arg "Bgv: q prime expected";
      if (q - 1) mod (2 * p.n) <> 0 then invalid_arg "Bgv: q not NTT-friendly")
    p.q_primes;
  if p.q_primes = [] || List.length p.q_primes > 2 then
    invalid_arg "Bgv: 1 or 2 ciphertext primes supported";
  if not (Field.is_prime p.t) then invalid_arg "Bgv: t must be prime";
  if (p.t - 1) mod (2 * p.n) <> 0 then
    invalid_arg "Bgv: t must be 1 mod 2n for slot packing";
  if p.sigma <= 0.0 then invalid_arg "Bgv: sigma must be positive"

let ahe_params ?(n = 2048) ?(min_t = 12289) () =
  let p =
    { n; q_primes = [ prime_a ]; t = find_plaintext_modulus ~n ~min_t; sigma = 3.2 }
  in
  validate p;
  p

let fhe_params ?(n = 2048) ?(min_t = 12289) () =
  let p =
    {
      n;
      q_primes = [ prime_a; prime_b ];
      t = find_plaintext_modulus ~n ~min_t;
      sigma = 3.2;
    }
  in
  validate p;
  p

(* Per-domain scratch buffers so the per-ciphertext steady state of
   encrypt/decrypt/relinearize/serialize allocates nothing beyond its
   result. Domain-local (not ctx-global mutable state) because Exec fans
   device encryption out over OCaml domains sharing one ctx. *)
type workspace = {
  w_u : int array array; (* nprimes x n: u in evaluation form during encrypt *)
  w_phase : int array array; (* nprimes x n: decrypt phase accumulators *)
  w_small : int array; (* n: general coeff-domain staging *)
  w_digit : int array; (* n: relin/galois digit in coefficient form *)
}

let scratch_words = Atomic.make 0

(* Cached per-params machinery: fields, NTT plans, CRT constants. *)
type ctx = {
  params : params;
  fields : Field.t array;
  plans : Ntt.plan array;
  pt_field : Field.t;
  pt_plan : Ntt.plan;
  q_total : int; (* product of primes; fits: both primes < 2^30.9 *)
  crt_inv : int; (* q1^-1 mod q2 when two primes *)
  log2_q : float;
  wk : workspace Domain.DLS.key;
}

let ctx_cache : (params, ctx) Hashtbl.t = Hashtbl.create 8

let ctx_of params =
  match Hashtbl.find_opt ctx_cache params with
  | Some c -> c
  | None ->
      validate params;
      let primes = Array.of_list params.q_primes in
      let fields = Array.map Field.create_unchecked primes in
      let plans = Array.map (fun q -> Ntt.plan ~n:params.n ~p:q) primes in
      let pt_field = Field.create_unchecked params.t in
      let pt_plan = Ntt.plan ~n:params.n ~p:params.t in
      let q_total = Array.fold_left ( * ) 1 primes in
      let crt_inv =
        if Array.length primes = 2 then Field.inv fields.(1) (primes.(0) mod primes.(1))
        else 0
      in
      let log2_q = Array.fold_left (fun a q -> a +. Float.log2 (float_of_int q)) 0.0 primes in
      let n = params.n and np = Array.length primes in
      (* Counted once per context (the per-workspace footprint), not per
         domain: every worker domain materializes its own DLS copy, and a
         per-instantiation count would make the gauge — and hence the
         deterministic metrics bytes — depend on the worker count. *)
      ignore (Atomic.fetch_and_add scratch_words (((2 * np) + 2) * n));
      let wk =
        Domain.DLS.new_key (fun () ->
            {
              w_u = Array.init np (fun _ -> Array.make n 0);
              w_phase = Array.init np (fun _ -> Array.make n 0);
              w_small = Array.make n 0;
              w_digit = Array.make n 0;
            })
      in
      let c =
        { params; fields; plans; pt_field; pt_plan; q_total; crt_inv; log2_q; wk }
      in
      Hashtbl.replace ctx_cache params c;
      c

let workspace ctx = Domain.DLS.get ctx.wk

(* An element of R_q in RNS form: one coefficient array per prime, tagged
   with the representation it is in. Everything long-lived — ciphertexts,
   public keys, relin/galois keys, secret-key shares — is held in [Eval]
   (NTT) form end-to-end, so homomorphic add stays a coefficient-wise map
   and mul/relinearize become pointwise products with no redundant
   transforms. [Coeff] appears only transiently at the encode/decode,
   serialize, galois and relin-digit boundaries (DESIGN.md §10). *)
type domain = Coeff | Eval [@@warning "-37"]
(* Coeff is currently only ever matched (serialize) — long-lived values
   are all built in Eval form — but the tag keeps the representation
   explicit and the boundaries checkable. *)

type rq = { dom : domain; rs : int array array }

type secret_key = { sk_ctx : ctx; s : rq }
type public_key = { pk_ctx : ctx; pk_a : rq; pk_b : rq }
type relin_key = { rk_ctx : ctx; rk : (rq * rq) array (* per digit: (b, a) *) }

type ciphertext = {
  ct_ctx : ctx;
  cs : rq array; (* c0, c1 [, c2], all Eval *)
  noise_bits : float; (* log2 estimate of |m + t*e - m| = |t*e| *)
}

let params_of_ct ct = ct.ct_ctx.params
let ciphertext_degree ct = Array.length ct.cs - 1
let slot_count p = p.n

let ciphertext_bytes p degree =
  (degree + 1) * List.length p.q_primes * p.n * 4

let public_key_bytes p = 2 * List.length p.q_primes * p.n * 4

let noise_budget_bits ct = ct.ct_ctx.log2_q -. 1.0 -. ct.noise_bits

(* --- small-integer polynomials, reduced consistently into every prime --- *)

let same_dom a b =
  if a.dom <> b.dom then invalid_arg "Bgv: mixed-domain rq operation"

(* Reduce a small signed coefficient vector into every prime and transform
   to evaluation form. *)
let reduce_small_eval ctx (small : int array) : rq =
  let rs =
    Array.mapi
      (fun j fld ->
        let v = Array.map (Field.of_int fld) small in
        Ntt.forward ctx.plans.(j) v;
        v)
      ctx.fields
  in
  { dom = Eval; rs }

let sample_ternary ctx rng =
  Array.init ctx.params.n (fun _ -> Arb_util.Rng.int rng 3 - 1)

let sample_error ctx rng =
  Array.init ctx.params.n (fun _ ->
      int_of_float (Float.round (Arb_util.Rng.gaussian rng ~sigma:ctx.params.sigma)))

let rq_add_into ctx ~(dst : rq) (a : rq) (b : rq) =
  same_dom a b;
  Array.iteri
    (fun j fld -> Poly.add_into fld ~dst:dst.rs.(j) a.rs.(j) b.rs.(j))
    ctx.fields

let rq_fresh ctx dom = { dom; rs = Array.map (fun _ -> Array.make ctx.params.n 0) ctx.fields }

let rq_add ctx a b =
  let dst = rq_fresh ctx a.dom in
  rq_add_into ctx ~dst a b;
  dst

let rq_sub ctx a b =
  same_dom a b;
  let dst = rq_fresh ctx a.dom in
  Array.iteri
    (fun j fld -> Poly.sub_into fld ~dst:dst.rs.(j) a.rs.(j) b.rs.(j))
    ctx.fields;
  dst

(* Pointwise product of evaluation-form elements — the whole point of the
   representation: ring multiplication with no transforms. *)
let rq_mul_eval ctx a b =
  same_dom a b;
  if a.dom <> Eval then invalid_arg "Bgv: rq_mul_eval wants evaluation form";
  let dst = rq_fresh ctx Eval in
  Array.iteri
    (fun j plan -> Ntt.pointwise_into plan ~dst:dst.rs.(j) a.rs.(j) b.rs.(j))
    ctx.plans;
  dst

(* Uniform draws interpreted directly as evaluation-form residues: the
   uniform distribution on R_q is domain-independent, and the draw count
   and order match the seed implementation exactly. *)
let rq_uniform ctx rng : rq =
  {
    dom = Eval;
    rs = Array.map (fun fld -> Poly.random_uniform fld rng ctx.params.n) ctx.fields;
  }

let rq_zero ctx : rq = rq_fresh ctx Eval

(* --- plaintext slot encoding: NTT over Z_t --- *)

let encode ctx (slots : int array) : int array =
  if Array.length slots > ctx.params.n then invalid_arg "Bgv.encode: too many slots";
  let v =
    Array.init ctx.params.n (fun i ->
        if i < Array.length slots then Field.of_int ctx.pt_field slots.(i) else 0)
  in
  Ntt.inverse ctx.pt_plan v;
  v

let decode ctx (coeffs : int array) : int array =
  let v = Array.copy coeffs in
  Ntt.forward ctx.pt_plan v;
  v

(* --- noise bookkeeping (log2 of the |t*e| deviation) --- *)

let log2f x = Float.log2 (max x 1.0)

let fresh_noise_bits ctx =
  let n = float_of_int ctx.params.n and t = float_of_int ctx.params.t in
  (* e1 + e2*s - e*u: two small-by-small products, probabilistic bound. *)
  log2f (t *. ctx.params.sigma *. ((2.0 *. sqrt n) +. 3.0)) +. 1.0

(* --- key generation --- *)

(* b = -(a (.) s) - t*e + extra, in evaluation form, where [extra] (if any)
   is added only at digit prime [at]. Shared by keygen / relin_keygen /
   galois_keygen. *)
let masked_key_poly ctx ~a ~s ~e ?extra ~at () =
  let t = ctx.params.t in
  let rs =
    Array.init (Array.length ctx.fields) (fun j ->
        let fld = ctx.fields.(j) and plan = ctx.plans.(j) in
        let dst = Array.make ctx.params.n 0 in
        Ntt.pointwise_into plan ~dst a.rs.(j) s.rs.(j);
        let tm = Field.of_int fld t in
        for i = 0 to ctx.params.n - 1 do
          dst.(i) <-
            Field.sub fld (Field.neg fld dst.(i)) (Field.mul fld tm e.rs.(j).(i))
        done;
        (match extra with
        | Some x when j = at -> Poly.add_into fld ~dst dst x.rs.(j)
        | _ -> ());
        dst)
  in
  { dom = Eval; rs }

let keygen params rng =
  let ctx = ctx_of params in
  let s_small = sample_ternary ctx rng in
  let s = reduce_small_eval ctx s_small in
  let e = reduce_small_eval ctx (sample_error ctx rng) in
  let a = rq_uniform ctx rng in
  (* b = -(a*s) - t*e *)
  let b = masked_key_poly ctx ~a ~s ~e ~at:(-1) () in
  ({ sk_ctx = ctx; s }, { pk_ctx = ctx; pk_a = a; pk_b = b })

(* --- encryption ---

   Split into randomness sampling (sequential, preserves the shared-RNG
   draw order: u then e1 then e2) and a deterministic compute half, so the
   runtime can sample for a whole device cohort in canonical order and fan
   the arithmetic out over domains with byte-identical results. *)

type encrypt_randomness = {
  r_u : int array; (* ternary *)
  r_e1 : int array; (* rounded Gaussian *)
  r_e2 : int array;
}

let sample_encrypt_randomness pk rng =
  let ctx = pk.pk_ctx in
  let r_u = sample_ternary ctx rng in
  let r_e1 = sample_error ctx rng in
  let r_e2 = sample_error ctx rng in
  { r_u; r_e1; r_e2 }

let encrypt_with_randomness pk r slots =
  let ctx = pk.pk_ctx in
  let ws = workspace ctx in
  let n = ctx.params.n and t = ctx.params.t in
  let nprimes = Array.length ctx.fields in
  let m = encode ctx slots in
  (* u in evaluation form, once per prime, reused by both components. *)
  for j = 0 to nprimes - 1 do
    let fld = ctx.fields.(j) and dst = ws.w_u.(j) in
    for i = 0 to n - 1 do
      dst.(i) <- Field.of_int fld r.r_u.(i)
    done;
    Ntt.forward ctx.plans.(j) dst
  done;
  let c0 = rq_fresh ctx Eval and c1 = rq_fresh ctx Eval in
  for j = 0 to nprimes - 1 do
    let fld = ctx.fields.(j) and plan = ctx.plans.(j) in
    let s = ws.w_small in
    (* c0 = pk_b (.) u + NTT(t*e1 + m) *)
    for i = 0 to n - 1 do
      s.(i) <-
        Field.add fld
          (Field.of_int fld (t * r.r_e1.(i)))
          (Field.of_int fld m.(i))
    done;
    Ntt.forward plan s;
    Ntt.pointwise_into plan ~dst:c0.rs.(j) pk.pk_b.rs.(j) ws.w_u.(j);
    Poly.add_into fld ~dst:c0.rs.(j) c0.rs.(j) s;
    (* c1 = pk_a (.) u + NTT(t*e2) *)
    for i = 0 to n - 1 do
      s.(i) <- Field.of_int fld (t * r.r_e2.(i))
    done;
    Ntt.forward plan s;
    Ntt.pointwise_into plan ~dst:c1.rs.(j) pk.pk_a.rs.(j) ws.w_u.(j);
    Poly.add_into fld ~dst:c1.rs.(j) c1.rs.(j) s
  done;
  { ct_ctx = ctx; cs = [| c0; c1 |]; noise_bits = fresh_noise_bits ctx }

let encrypt pk rng slots =
  encrypt_with_randomness pk (sample_encrypt_randomness pk rng) slots

let encrypt_with_sk sk rng slots =
  let ctx = sk.sk_ctx in
  let m = reduce_small_eval ctx (encode ctx slots) in
  let e = reduce_small_eval ctx (sample_error ctx rng) in
  let a = rq_uniform ctx rng in
  let t = ctx.params.t in
  (* c0 = -(a*s) - t*e + m ; c1 = a  -> c0 + c1*s = m - t*e *)
  let c0 = rq_add ctx (masked_key_poly ctx ~a ~s:sk.s ~e ~at:(-1) ()) m in
  {
    ct_ctx = ctx;
    cs = [| c0; a |];
    noise_bits = log2f (float_of_int t *. ctx.params.sigma *. 3.0) +. 1.0;
  }

(* --- CRT lift of a full RNS value to a centered integer, then mod t --- *)

let lift_centered_mod_t ctx (residues : int array) : int =
  let q = ctx.q_total in
  let x =
    match Array.length ctx.fields with
    | 1 -> residues.(0)
    | 2 ->
        let q1 = (ctx.fields.(0)).Field.p in
        let f2 = ctx.fields.(1) in
        let d = Field.sub f2 residues.(1) (residues.(0) mod f2.Field.p) in
        residues.(0) + (q1 * Field.mul f2 d ctx.crt_inv)
    | _ -> assert false
  in
  let centered = if x > q / 2 then x - q else x in
  let t = ctx.params.t in
  ((centered mod t) + t) mod t

let decrypt sk ct =
  let ctx = sk.sk_ctx in
  let ws = workspace ctx in
  let nprimes = Array.length ctx.fields in
  let deg = Array.length ct.cs - 1 in
  (* phase = c0 + c1*s + c2*s^2: pointwise accumulation in evaluation form,
     one inverse transform per prime at the end. *)
  for j = 0 to nprimes - 1 do
    let plan = ctx.plans.(j) in
    let acc = ws.w_phase.(j) in
    Array.blit ct.cs.(0).rs.(j) 0 acc 0 ctx.params.n;
    let spow = ws.w_small in
    Array.blit sk.s.rs.(j) 0 spow 0 ctx.params.n;
    for d = 1 to deg do
      Ntt.pointwise_add_into plan ~dst:acc ct.cs.(d).rs.(j) spow;
      if d < deg then Ntt.pointwise_into plan ~dst:spow spow sk.s.rs.(j)
    done;
    Ntt.inverse plan acc
  done;
  let coeffs =
    Array.init ctx.params.n (fun i ->
        lift_centered_mod_t ctx (Array.init nprimes (fun j -> ws.w_phase.(j).(i))))
  in
  decode ctx coeffs

(* --- homomorphic operations --- *)

let check_same a b =
  if a.ct_ctx != b.ct_ctx then invalid_arg "Bgv: mismatched parameters"

(* Noise of a sum is the sum of noises: combine the log2 estimates with a
   log-sum-exp so that long chains of additions are tracked accurately. *)
let add_noise_bits a b =
  let ln2 = Float.log 2.0 in
  Arb_util.Stats.log_sum_exp (a *. ln2) (b *. ln2) /. ln2

let add a b =
  check_same a b;
  let ctx = a.ct_ctx in
  let deg = max (Array.length a.cs) (Array.length b.cs) in
  let get ct i = if i < Array.length ct.cs then ct.cs.(i) else rq_zero ctx in
  {
    ct_ctx = ctx;
    cs = Array.init deg (fun i -> rq_add ctx (get a i) (get b i));
    noise_bits = add_noise_bits a.noise_bits b.noise_bits;
  }

(* In-place accumulation for long aggregation folds: reuses [a]'s
   coefficient storage (only the small record is fresh), so the
   aggregator's steady state allocates nothing per addition. [a] must not
   be used again by the caller. Falls back to {!add} on degree mismatch. *)
let accumulate a b =
  check_same a b;
  if Array.length a.cs <> Array.length b.cs then add a b
  else begin
    let ctx = a.ct_ctx in
    Array.iteri (fun i ai -> rq_add_into ctx ~dst:ai ai b.cs.(i)) a.cs;
    { a with noise_bits = add_noise_bits a.noise_bits b.noise_bits }
  end

let sub a b =
  check_same a b;
  let ctx = a.ct_ctx in
  let deg = max (Array.length a.cs) (Array.length b.cs) in
  let get ct i = if i < Array.length ct.cs then ct.cs.(i) else rq_zero ctx in
  {
    ct_ctx = ctx;
    cs = Array.init deg (fun i -> rq_sub ctx (get a i) (get b i));
    noise_bits = add_noise_bits a.noise_bits b.noise_bits;
  }

let add_plain ct slots =
  let ctx = ct.ct_ctx in
  let m = reduce_small_eval ctx (encode ctx slots) in
  let cs = Array.copy ct.cs in
  cs.(0) <- rq_add ctx cs.(0) m;
  { ct with cs }

let mul_plain ct slots =
  let ctx = ct.ct_ctx in
  let m = reduce_small_eval ctx (encode ctx slots) in
  let t = float_of_int ctx.params.t and n = float_of_int ctx.params.n in
  {
    ct_ctx = ctx;
    cs = Array.map (fun c -> rq_mul_eval ctx c m) ct.cs;
    noise_bits = ct.noise_bits +. log2f t +. (0.5 *. log2f n) +. 1.0;
  }

let mul a b =
  check_same a b;
  if ciphertext_degree a <> 1 || ciphertext_degree b <> 1 then
    invalid_arg "Bgv.mul: inputs must be degree-1 ciphertexts";
  let ctx = a.ct_ctx in
  (* Pure pointwise tensor: no transforms at all in evaluation form. *)
  let c0 = rq_mul_eval ctx a.cs.(0) b.cs.(0) in
  let c1 = rq_mul_eval ctx a.cs.(0) b.cs.(1) in
  Array.iteri
    (fun j plan ->
      Ntt.pointwise_add_into plan ~dst:c1.rs.(j) a.cs.(1).rs.(j) b.cs.(0).rs.(j))
    ctx.plans;
  let c2 = rq_mul_eval ctx a.cs.(1) b.cs.(1) in
  let t = log2f (float_of_int ctx.params.t) in
  let half_n = 0.5 *. log2f (float_of_int ctx.params.n) in
  let nb =
    List.fold_left max neg_infinity
      [
        a.noise_bits +. b.noise_bits +. half_n -. t;
        a.noise_bits +. t +. half_n;
        b.noise_bits +. t +. half_n;
      ]
    +. 2.0
  in
  { ct_ctx = ctx; cs = [| c0; c1; c2 |]; noise_bits = nb }

(* --- relinearization: RNS-gadget key switching --- *)

let relin_keygen params rng sk =
  let ctx = ctx_of params in
  let nprimes = Array.length ctx.fields in
  let s2 = rq_mul_eval ctx sk.s sk.s in
  let rk =
    Array.init nprimes (fun j ->
        let a = rq_uniform ctx rng in
        let e = reduce_small_eval ctx (sample_error ctx rng) in
        (* b = -(a*s) - t*e + qtilde_j * s^2, where qtilde_j is the CRT basis
           element: 1 mod q_j, 0 mod the others. In RNS that means adding
           s^2's residue only at prime j. *)
        let b = masked_key_poly ctx ~a ~s:sk.s ~e ~extra:s2 ~at:j () in
        (b, a))
  in
  { rk_ctx = ctx; rk }

(* Key-switch the digits of [src] (an Eval-form rq) through the per-digit
   key pairs, accumulating b-parts into [acc0] and a-parts into [acc1].
   Digit j is src's coefficient-form residue at prime j promoted into every
   prime: one inverse transform recovers it, and at prime j itself the
   promotion is the identity, so src's residue is reused untransformed. *)
let key_switch_digits ctx ws ~keys ~src ~acc0 ~acc1 =
  let nprimes = Array.length ctx.fields in
  let n = ctx.params.n in
  for j = 0 to nprimes - 1 do
    let dig = ws.w_digit in
    Array.blit src.rs.(j) 0 dig 0 n;
    Ntt.inverse ctx.plans.(j) dig;
    let b, a = keys.(j) in
    for k = 0 to nprimes - 1 do
      let dig_eval =
        if k = j then src.rs.(j) (* NTT(INTT(x)) = x *)
        else begin
          let fld = ctx.fields.(k) and s = ws.w_small in
          for i = 0 to n - 1 do
            s.(i) <- Field.of_int fld dig.(i)
          done;
          Ntt.forward ctx.plans.(k) s;
          s
        end
      in
      Ntt.pointwise_add_into ctx.plans.(k) ~dst:acc0.rs.(k) dig_eval b.rs.(k);
      Ntt.pointwise_add_into ctx.plans.(k) ~dst:acc1.rs.(k) dig_eval a.rs.(k)
    done
  done

let switch_noise ctx =
  (* sum over digits of (digit * t * e): digit coeffs < q_j ~ 2^30. *)
  30.0 +. log2f (float_of_int ctx.params.t)
  +. log2f (ctx.params.sigma *. float_of_int ctx.params.n)
  +. log2f (float_of_int (Array.length ctx.fields))

let relinearize rk ct =
  if ciphertext_degree ct <> 2 then invalid_arg "Bgv.relinearize: degree-2 expected";
  let ctx = ct.ct_ctx in
  if rk.rk_ctx != ctx then invalid_arg "Bgv.relinearize: mismatched parameters";
  let ws = workspace ctx in
  let c0 =
    { dom = Eval; rs = Array.map Array.copy ct.cs.(0).rs }
  and c1 = { dom = Eval; rs = Array.map Array.copy ct.cs.(1).rs } in
  key_switch_digits ctx ws ~keys:rk.rk ~src:ct.cs.(2) ~acc0:c0 ~acc1:c1;
  {
    ct_ctx = ctx;
    cs = [| c0; c1 |];
    noise_bits = add_noise_bits ct.noise_bits (switch_noise ctx);
  }

(* --- threshold decryption --- *)

let share_secret_key params rng sk ~parties =
  let ctx = ctx_of params in
  if parties < 1 then invalid_arg "Bgv.share_secret_key";
  let shares =
    Array.init (parties - 1) (fun _ -> rq_uniform ctx rng)
  in
  let sum =
    Array.fold_left (fun acc sh -> rq_add ctx acc sh) (rq_zero ctx) shares
  in
  let last = rq_sub ctx sk.s sum in
  Array.append shares [| last |]
  |> Array.map (fun s -> { sk_ctx = ctx; s })

let partial_decrypt params rng share ct =
  let ctx = ctx_of params in
  if ciphertext_degree ct <> 1 then
    invalid_arg "Bgv.partial_decrypt: degree-1 ciphertext required";
  (* d_i = c1 * s_i + t * e_smudge, per prime, CRT-consistent noise. *)
  let smudge = reduce_small_eval ctx (sample_error ctx rng) in
  let t = ctx.params.t in
  let d =
    Array.init (Array.length ctx.fields) (fun j ->
        let fld = ctx.fields.(j) and plan = ctx.plans.(j) in
        let dst = Array.make ctx.params.n 0 in
        Ntt.pointwise_into plan ~dst ct.cs.(1).rs.(j) share.s.rs.(j);
        let tm = Field.of_int fld t in
        for i = 0 to ctx.params.n - 1 do
          dst.(i) <- Field.add fld dst.(i) (Field.mul fld tm smudge.rs.(j).(i))
        done;
        dst)
  in
  Array.to_list d

let combine_partials params ct partials =
  let ctx = ctx_of params in
  let nprimes = Array.length ctx.fields in
  let acc = Array.init nprimes (fun j -> Array.copy ct.cs.(0).rs.(j)) in
  List.iter
    (fun partial ->
      List.iteri
        (fun j dj -> Poly.add_into ctx.fields.(j) ~dst:acc.(j) acc.(j) dj)
        partial)
    partials;
  Array.iteri (fun j a -> Ntt.inverse ctx.plans.(j) a) acc;
  let coeffs =
    Array.init ctx.params.n (fun i ->
        lift_centered_mod_t ctx (Array.init nprimes (fun j -> acc.(j).(i))))
  in
  decode ctx coeffs

(* --- Galois automorphisms and slot rotations --- *)

(* a(x) -> a(x^k) in Z_p[x]/(x^n+1): coefficient i lands at i*k mod 2n,
   negated when the exponent wraps past n. *)
let galois_poly fld n k (a : int array) =
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    let e = i * k mod (2 * n) in
    if e < n then out.(e) <- Field.add fld out.(e) a.(i)
    else out.(e - n) <- Field.sub fld out.(e - n) a.(i)
  done;
  out

(* Evaluation-form galois: through the coefficient domain (the automorphism
   is a coefficient permutation with signs). Cold path — key setup and
   rotations only. *)
let rq_galois ctx k (a : rq) : rq =
  if a.dom <> Eval then invalid_arg "Bgv.rq_galois: evaluation form expected";
  let rs =
    Array.mapi
      (fun j aj ->
        let c = Array.copy aj in
        Ntt.inverse ctx.plans.(j) c;
        let g = galois_poly ctx.fields.(j) ctx.params.n k c in
        Ntt.forward ctx.plans.(j) g;
        g)
      a.rs
  in
  { dom = Eval; rs }

(* The generator of the slot-rotation subgroup for power-of-two
   cyclotomics. *)
let rotation_generator _params = 3

type galois_key = { gk_ctx : ctx; gk_k : int; gk : (rq * rq) array }

let galois_keygen params rng sk ~k =
  if k land 1 = 0 then invalid_arg "Bgv.galois_keygen: k must be odd";
  let ctx = ctx_of params in
  let sk_gal = rq_galois ctx k sk.s in
  let nprimes = Array.length ctx.fields in
  let gk =
    Array.init nprimes (fun j ->
        let a = rq_uniform ctx rng in
        let e = reduce_small_eval ctx (sample_error ctx rng) in
        (* b = -(a*s) - t*e + qtilde_j * s(x^k) (cf. relin_keygen). *)
        let b = masked_key_poly ctx ~a ~s:sk.s ~e ~extra:sk_gal ~at:j () in
        (b, a))
  in
  { gk_ctx = ctx; gk_k = k; gk }

let apply_galois gkey ct =
  let ctx = ct.ct_ctx in
  if gkey.gk_ctx != ctx then invalid_arg "Bgv.apply_galois: mismatched parameters";
  if ciphertext_degree ct <> 1 then
    invalid_arg "Bgv.apply_galois: degree-1 ciphertext required";
  let ws = workspace ctx in
  let k = gkey.gk_k in
  let c0g = rq_galois ctx k ct.cs.(0) in
  let c1g = rq_galois ctx k ct.cs.(1) in
  (* Key-switch c1g from s(x^k) back to s with the RNS gadget. *)
  let c1 = rq_zero ctx in
  key_switch_digits ctx ws ~keys:gkey.gk ~src:c1g ~acc0:c0g ~acc1:c1;
  {
    ct_ctx = ctx;
    cs = [| c0g; c1 |];
    noise_bits = add_noise_bits ct.noise_bits (switch_noise ctx);
  }

(* The slot permutation a Galois map induces, derived empirically from the
   plaintext encoding (cached per (params, k)). slot i of the input appears
   at position perm.(i) of the output. *)
let slot_perm_cache : (params * int, int array) Hashtbl.t = Hashtbl.create 8

let slot_rotation_of_galois params ~k =
  match Hashtbl.find_opt slot_perm_cache (params, k) with
  | Some p -> p
  | None ->
      let ctx = ctx_of params in
      let n = params.n in
      let perm = Array.make n (-1) in
      (* sigma_k on an encoded basis vector moves exactly one slot; track
         all n at once by encoding slot i with value i+1. *)
      let slots = Array.init n (fun i -> (i + 1) mod params.t) in
      let m = encode ctx slots in
      let m' = galois_poly ctx.pt_field n k m in
      let slots' = decode ctx m' in
      Array.iteri
        (fun pos v ->
          let v = ((v mod params.t) + params.t) mod params.t in
          if v >= 1 && v <= n then perm.(v - 1) <- pos)
        slots';
      Hashtbl.replace slot_perm_cache (params, k) perm;
      perm

(* --- serialization --- *)

(* Wire format: [degree:u8][n:u32][primes:u8][t:u32] then, per component
   polynomial and per RNS prime, n little-endian u32 coefficients in
   canonical COEFFICIENT form — evaluation-form components are inverse-
   transformed on the way out (and forward-transformed on the way in), so
   the bytes are identical to the seed's coefficient-form wire format. The
   size matches [ciphertext_bytes] up to the 14-byte header. *)

let header_bytes = 14

let serialize_ciphertext ct =
  let ctx = ct.ct_ctx in
  let ws = workspace ctx in
  let n = ctx.params.n in
  let nprimes = Array.length ctx.fields in
  let degree = ciphertext_degree ct in
  let buf = Buffer.create (header_bytes + ((degree + 1) * nprimes * n * 4)) in
  Buffer.add_uint8 buf degree;
  Buffer.add_int32_le buf (Int32.of_int n);
  Buffer.add_uint8 buf nprimes;
  Buffer.add_int32_le buf (Int32.of_int ctx.params.t);
  (* Noise estimate travels too (it is bookkeeping, not secret). *)
  let noise_q = int_of_float (ct.noise_bits *. 256.0) in
  Buffer.add_int32_le buf (Int32.of_int noise_q);
  Array.iter
    (fun (comp : rq) ->
      Array.iteri
        (fun j poly ->
          match comp.dom with
          | Coeff ->
              Array.iter (fun c -> Buffer.add_int32_le buf (Int32.of_int c)) poly
          | Eval ->
              let c = ws.w_small in
              Array.blit poly 0 c 0 n;
              Ntt.inverse ctx.plans.(j) c;
              Array.iter (fun x -> Buffer.add_int32_le buf (Int32.of_int x)) c)
        comp.rs)
    ct.cs;
  Buffer.contents buf

(* Canonical coefficient-form rendering of a public key: [n:u32][primes:u8]
   [t:u32] then a's and b's residue polynomials as little-endian u32
   coefficients. Representation-independent — used for certificate
   digests. *)
let serialize_public_key pk =
  let ctx = pk.pk_ctx in
  let ws = workspace ctx in
  let n = ctx.params.n in
  let nprimes = Array.length ctx.fields in
  let buf = Buffer.create (9 + (2 * nprimes * n * 4)) in
  Buffer.add_int32_le buf (Int32.of_int n);
  Buffer.add_uint8 buf nprimes;
  Buffer.add_int32_le buf (Int32.of_int ctx.params.t);
  List.iter
    (fun (comp : rq) ->
      Array.iteri
        (fun j poly ->
          match comp.dom with
          | Coeff ->
              Array.iter (fun c -> Buffer.add_int32_le buf (Int32.of_int c)) poly
          | Eval ->
              let c = ws.w_small in
              Array.blit poly 0 c 0 n;
              Ntt.inverse ctx.plans.(j) c;
              Array.iter (fun x -> Buffer.add_int32_le buf (Int32.of_int x)) c)
        comp.rs)
    [ pk.pk_a; pk.pk_b ];
  Buffer.contents buf

let deserialize_ciphertext params s =
  let ctx = ctx_of params in
  let pos = ref 0 in
  let u8 () =
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let u32 () =
    let v = Int32.to_int (String.get_int32_le s !pos) in
    pos := !pos + 4;
    v
  in
  (try
     let degree = u8 () in
     let n = u32 () in
     let nprimes = u8 () in
     let t = u32 () in
     if n <> params.n || nprimes <> Array.length ctx.fields || t <> params.t then
       invalid_arg "Bgv.deserialize_ciphertext: parameter mismatch";
     let noise_q = u32 () in
     let expected = header_bytes + ((degree + 1) * nprimes * n * 4) in
     if String.length s <> expected then
       invalid_arg "Bgv.deserialize_ciphertext: truncated";
     let css =
       Array.init (degree + 1) (fun _ ->
           Array.init nprimes (fun _ -> Array.init n (fun _ -> u32 ())))
     in
     (* Canonicality: every coefficient reduced mod its prime. *)
     Array.iter
       (fun comp ->
         Array.iteri
           (fun j poly ->
             Array.iter
               (fun c ->
                 if c < 0 || c >= ctx.fields.(j).Field.p then
                   invalid_arg "Bgv.deserialize_ciphertext: non-canonical coefficient")
               poly)
           comp)
       css;
     let cs =
       Array.map
         (fun comp ->
           Array.iteri (fun j poly -> Ntt.forward ctx.plans.(j) poly) comp;
           { dom = Eval; rs = comp })
         css
     in
     { ct_ctx = ctx; cs; noise_bits = float_of_int noise_q /. 256.0 }
   with Invalid_argument m when m = "index out of bounds" ->
     invalid_arg "Bgv.deserialize_ciphertext: truncated")

let serialized_bytes params degree = header_bytes + ciphertext_bytes params degree

(* Allocation gauge exported as arb_crypto_scratch_words by the runtime. *)
let scratch_words_allocated () = Atomic.get scratch_words
