let check_len a b =
  if Array.length a <> Array.length b then invalid_arg "Poly: length mismatch"

(* In-place variants write into [dst] (which may alias an input) so the
   BGV kernels' steady state allocates nothing; the allocating wrappers
   below stay for callers that want fresh arrays. *)

let add_into fld ~dst a b =
  check_len a b;
  check_len dst a;
  let p = fld.Field.p in
  for i = 0 to Array.length a - 1 do
    let s = Array.unsafe_get a i + Array.unsafe_get b i in
    Array.unsafe_set dst i (if s >= p then s - p else s)
  done

let sub_into fld ~dst a b =
  check_len a b;
  check_len dst a;
  let p = fld.Field.p in
  for i = 0 to Array.length a - 1 do
    let d = Array.unsafe_get a i - Array.unsafe_get b i in
    Array.unsafe_set dst i (if d < 0 then d + p else d)
  done

let neg_into fld ~dst a =
  check_len dst a;
  let p = fld.Field.p in
  for i = 0 to Array.length a - 1 do
    let x = Array.unsafe_get a i in
    Array.unsafe_set dst i (if x = 0 then 0 else p - x)
  done

let scale_into fld ~dst k a =
  check_len dst a;
  let k = Field.of_int fld k in
  for i = 0 to Array.length a - 1 do
    Array.unsafe_set dst i (Field.mul fld k (Array.unsafe_get a i))
  done

let add fld a b =
  let dst = Array.make (Array.length a) 0 in
  add_into fld ~dst a b;
  dst

let sub fld a b =
  let dst = Array.make (Array.length a) 0 in
  sub_into fld ~dst a b;
  dst

let neg fld a =
  let dst = Array.make (Array.length a) 0 in
  neg_into fld ~dst a;
  dst

let scale fld k a =
  let dst = Array.make (Array.length a) 0 in
  scale_into fld ~dst k a;
  dst

let mul_naive fld a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Poly.mul_naive: length mismatch";
  let c = Array.make n 0 in
  for i = 0 to n - 1 do
    if a.(i) <> 0 then
      for j = 0 to n - 1 do
        let k = i + j in
        let prod = Field.mul fld a.(i) b.(j) in
        if k < n then c.(k) <- Field.add fld c.(k) prod
        else c.(k - n) <- Field.sub fld c.(k - n) prod
      done
  done;
  c

let random_uniform fld rng n = Array.init n (fun _ -> Field.random fld rng)

let random_ternary fld rng n =
  Array.init n (fun _ ->
      match Arb_util.Rng.int rng 3 with
      | 0 -> 0
      | 1 -> 1
      | _ -> Field.neg fld 1)

let random_error fld rng ~sigma n =
  Array.init n (fun _ ->
      let e = int_of_float (Float.round (Arb_util.Rng.gaussian rng ~sigma)) in
      Field.of_int fld e)

let inf_norm fld a =
  Array.fold_left (fun acc x -> max acc (abs (Field.center fld x))) 0 a

(* Explicit structural equality on int arrays: immune to polymorphic-
   compare surprises if a caller's representation ever grows variants or
   records around these coefficient vectors. *)
let equal (a : int array) (b : int array) =
  Array.length a = Array.length b
  &&
  let rec go i =
    i >= Array.length a || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
  in
  go 0
