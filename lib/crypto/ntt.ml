type plan = {
  n : int;
  p : int;
  p2 : int; (* 2p: lazy-reduction bound used by the butterflies *)
  log2n : int;
  psi_rev : int array; (* powers of psi in bit-reversed order *)
  ipsi_rev : int array; (* powers of psi^-1 in bit-reversed order *)
  psi_rev_q : float array; (* psi_rev.(i) / p, Shoup-style twiddle ratios *)
  ipsi_rev_q : float array;
  n_inv : int;
  n_inv_q : float;
  inv_p : float;
}

(* Process-lifetime kernel counters, exported as arb_crypto_* metrics by
   the runtime (Trace.export). Bumped once per transform / vector op —
   never inside the butterfly loops. *)
module Stats = struct
  let transforms = Atomic.make 0
  let pointwise_ops = Atomic.make 0
  let reductions_saved = Atomic.make 0

  let get () =
    ( Atomic.get transforms,
      Atomic.get pointwise_ops,
      Atomic.get reductions_saved )
end

let bit_reverse bits x =
  let r = ref 0 in
  for i = 0 to bits - 1 do
    if x land (1 lsl i) <> 0 then r := !r lor (1 lsl (bits - 1 - i))
  done;
  !r

let plan ~n ~p =
  if n <= 0 || n land (n - 1) <> 0 then invalid_arg "Ntt.plan: n not a power of two";
  (* Reject moduli whose butterfly products would silently wrap. The plain
     (p-1)^2 bound covers the seed's canonical butterflies; the lazy
     butterflies below keep values in [0, 4p) and multiply them by
     twiddles < p, so they need the stronger 4p(p-1) <= max_int headroom,
     i.e. p <= 2^30. Every RNS / plaintext prime in this repository is
     below 2^30. Both checks are written division-style so the guard
     itself cannot overflow. *)
  if p > 2 && p - 1 > max_int / (p - 1) then
    invalid_arg "Ntt.plan: (p-1)^2 overflows 62 bits";
  if p > 1 lsl 30 then
    invalid_arg "Ntt.plan: p > 2^30 breaks lazy-reduction headroom";
  let f = Field.create p in
  if (p - 1) mod (2 * n) <> 0 then invalid_arg "Ntt.plan: 2n does not divide p-1";
  let psi = Field.root_of_unity f ~order:(2 * n) in
  let ipsi = Field.inv f psi in
  let bits =
    let rec go b v = if v = 1 then b else go (b + 1) (v lsr 1) in
    go 0 n
  in
  let powers root =
    let a = Array.make n 1 in
    for i = 1 to n - 1 do
      a.(i) <- Field.mul f a.(i - 1) root
    done;
    Array.init n (fun i -> a.(bit_reverse bits i))
  in
  let fp = float_of_int p in
  let ratios a = Array.map (fun w -> float_of_int w /. fp) a in
  let psi_rev = powers psi and ipsi_rev = powers ipsi in
  let n_inv = Field.inv f n in
  {
    n;
    p;
    p2 = 2 * p;
    log2n = bits;
    psi_rev;
    ipsi_rev;
    psi_rev_q = ratios psi_rev;
    ipsi_rev_q = ratios ipsi_rev;
    n_inv;
    n_inv_q = float_of_int n_inv /. fp;
    inv_p = 1.0 /. fp;
  }

let n t = t.n
let p t = t.p

(* The seed kernels did one hardware division per butterfly (n/2 per stage,
   log2 n stages) plus one per coefficient in the inverse's final scaling
   and pointwise products; the lazy kernels issue none. *)
let saved_per_transform t = t.n / 2 * t.log2n

let count_transform t extra =
  Atomic.incr Stats.transforms;
  ignore
    (Atomic.fetch_and_add Stats.reductions_saved (saved_per_transform t + extra))

(* --- Reference kernels (seed implementation, hardware `mod`) ---

   Kept verbatim as differential-test oracles and as the "pre-PR" baseline
   the crypto_kernels bench measures speedups against. *)

let forward_reference t a =
  if Array.length a <> t.n then invalid_arg "Ntt.forward: wrong length";
  let p = t.p in
  let m = ref 1 and len = ref (t.n / 2) in
  while !len >= 1 do
    let m' = !m and l = !len in
    for i = 0 to m' - 1 do
      let w = t.psi_rev.(m' + i) in
      let j0 = 2 * i * l in
      for j = j0 to j0 + l - 1 do
        let u = a.(j) in
        let v = a.(j + l) * w mod p in
        let s = u + v in
        a.(j) <- (if s >= p then s - p else s);
        let d = u - v in
        a.(j + l) <- (if d < 0 then d + p else d)
      done
    done;
    m := m' * 2;
    len := l / 2
  done

let inverse_reference t a =
  if Array.length a <> t.n then invalid_arg "Ntt.inverse: wrong length";
  let p = t.p in
  let m = ref (t.n / 2) and len = ref 1 in
  while !m >= 1 do
    let m' = !m and l = !len in
    for i = 0 to m' - 1 do
      let w = t.ipsi_rev.(m' + i) in
      let j0 = 2 * i * l in
      for j = j0 to j0 + l - 1 do
        let u = a.(j) in
        let v = a.(j + l) in
        let s = u + v in
        a.(j) <- (if s >= p then s - p else s);
        let d = u - v in
        let d = if d < 0 then d + p else d in
        a.(j + l) <- d * w mod p
      done
    done;
    m := m' / 2;
    len := l * 2
  done;
  for j = 0 to t.n - 1 do
    a.(j) <- a.(j) * t.n_inv mod p
  done

let multiply_reference t a b =
  let a' = Array.copy a and b' = Array.copy b in
  forward_reference t a';
  forward_reference t b';
  let p = t.p in
  let c = Array.init t.n (fun i -> a'.(i) * b'.(i) mod p) in
  inverse_reference t c;
  c

(* --- Production kernels: Barrett twiddles + Harvey lazy reduction ---

   Forward: Cooley–Tukey decimation-in-time with merged psi twisting.
   Coefficients live in [0, 4p) between stages; each butterfly does one
   Barrett product against a precomputed float twiddle ratio (quotient
   estimate off by at most one, a single conditional correction keeps the
   product in [0, 2p)) and defers the rest of the reduction. A final pass
   normalizes to the canonical [0, p), so results are bit-identical to the
   reference kernels. Overflow-safe because plan enforces p <= 2^30:
   v*w < 4p*p <= 2^62. *)
let forward t a =
  if Array.length a <> t.n then invalid_arg "Ntt.forward: wrong length";
  let p = t.p and p2 = t.p2 in
  let psi = t.psi_rev and psi_q = t.psi_rev_q in
  let m = ref 1 and len = ref (t.n / 2) in
  while !len >= 1 do
    let m' = !m and l = !len in
    for i = 0 to m' - 1 do
      let w = Array.unsafe_get psi (m' + i) in
      let wq = Array.unsafe_get psi_q (m' + i) in
      let j0 = 2 * i * l in
      for j = j0 to j0 + l - 1 do
        let u = Array.unsafe_get a j in
        let u = if u >= p2 then u - p2 else u in
        let v = Array.unsafe_get a (j + l) in
        let q = int_of_float (float_of_int v *. wq) in
        let x = (v * w) - (q * p) in
        let x = if x < 0 then x + p else x in
        Array.unsafe_set a j (u + x);
        Array.unsafe_set a (j + l) (u - x + p2)
      done
    done;
    m := m' * 2;
    len := l / 2
  done;
  for j = 0 to t.n - 1 do
    let x = Array.unsafe_get a j in
    let x = if x >= p2 then x - p2 else x in
    Array.unsafe_set a j (if x >= p then x - p else x)
  done;
  count_transform t 0

(* Inverse: Gentleman–Sande decimation-in-frequency, values kept in
   [0, 2p) between stages; the 1/n scaling doubles as the final full
   reduction to canonical form. *)
let inverse t a =
  if Array.length a <> t.n then invalid_arg "Ntt.inverse: wrong length";
  let p = t.p and p2 = t.p2 in
  let ipsi = t.ipsi_rev and ipsi_q = t.ipsi_rev_q in
  let m = ref (t.n / 2) and len = ref 1 in
  while !m >= 1 do
    let m' = !m and l = !len in
    for i = 0 to m' - 1 do
      let w = Array.unsafe_get ipsi (m' + i) in
      let wq = Array.unsafe_get ipsi_q (m' + i) in
      let j0 = 2 * i * l in
      for j = j0 to j0 + l - 1 do
        let u = Array.unsafe_get a j in
        let v = Array.unsafe_get a (j + l) in
        let s = u + v in
        Array.unsafe_set a j (if s >= p2 then s - p2 else s);
        let d = u - v + p2 in
        let q = int_of_float (float_of_int d *. wq) in
        let x = (d * w) - (q * p) in
        Array.unsafe_set a (j + l) (if x < 0 then x + p else x)
      done
    done;
    m := m' / 2;
    len := l * 2
  done;
  let ninv = t.n_inv and ninv_q = t.n_inv_q in
  for j = 0 to t.n - 1 do
    let x = Array.unsafe_get a j in
    let q = int_of_float (float_of_int x *. ninv_q) in
    let r = (x * ninv) - (q * p) in
    let r = if r < 0 then r + p else r in
    Array.unsafe_set a j (if r >= p then r - p else r)
  done;
  count_transform t t.n

let count_pointwise t =
  Atomic.incr Stats.pointwise_ops;
  ignore (Atomic.fetch_and_add Stats.reductions_saved t.n)

(* Slot-wise Barrett product of canonical vectors; [dst] may alias either
   input. Canonical output so NTT-domain values stay in [0, p) at rest. *)
let pointwise_into t ~dst a b =
  if Array.length a <> t.n || Array.length b <> t.n || Array.length dst <> t.n
  then invalid_arg "Ntt.pointwise: wrong length";
  let p = t.p and ip = t.inv_p in
  for i = 0 to t.n - 1 do
    let x = Array.unsafe_get a i and y = Array.unsafe_get b i in
    let q = int_of_float (float_of_int x *. float_of_int y *. ip) in
    let r = (x * y) - (q * p) in
    let r = if r < 0 then r + p else r in
    Array.unsafe_set dst i (if r >= p then r - p else r)
  done;
  count_pointwise t

(* dst.(i) <- dst.(i) + a.(i)*b.(i) mod p, canonical. *)
let pointwise_add_into t ~dst a b =
  if Array.length a <> t.n || Array.length b <> t.n || Array.length dst <> t.n
  then invalid_arg "Ntt.pointwise: wrong length";
  let p = t.p and ip = t.inv_p in
  for i = 0 to t.n - 1 do
    let x = Array.unsafe_get a i and y = Array.unsafe_get b i in
    let q = int_of_float (float_of_int x *. float_of_int y *. ip) in
    let r = (x * y) - (q * p) in
    let r = if r < 0 then r + p else r in
    let r = if r >= p then r - p else r in
    let s = Array.unsafe_get dst i + r in
    Array.unsafe_set dst i (if s >= p then s - p else s)
  done;
  count_pointwise t

let pointwise t a b =
  let dst = Array.make t.n 0 in
  pointwise_into t ~dst a b;
  dst

let multiply t a b =
  let a' = Array.copy a and b' = Array.copy b in
  forward t a';
  forward t b';
  pointwise_into t ~dst:a' a' b';
  inverse t a';
  a'
