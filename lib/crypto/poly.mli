(** Dense polynomials over Z_p, as coefficient arrays of fixed length n.

    Thin helpers shared by the BGV cryptosystem and tests. All arrays have
    the ring dimension as their length. The [_into] variants write into a
    caller-supplied destination (which may alias an input) so hot loops
    allocate nothing; the plain variants allocate fresh arrays. *)

val add : Field.t -> int array -> int array -> int array
val sub : Field.t -> int array -> int array -> int array
val neg : Field.t -> int array -> int array
val scale : Field.t -> int -> int array -> int array

val add_into : Field.t -> dst:int array -> int array -> int array -> unit
val sub_into : Field.t -> dst:int array -> int array -> int array -> unit
val neg_into : Field.t -> dst:int array -> int array -> unit
val scale_into : Field.t -> dst:int array -> int -> int array -> unit

val mul_naive : Field.t -> int array -> int array -> int array
(** Quadratic negacyclic product — the test oracle for the NTT path. *)

val random_uniform : Field.t -> Arb_util.Rng.t -> int -> int array
(** Uniform coefficients. *)

val random_ternary : Field.t -> Arb_util.Rng.t -> int -> int array
(** Coefficients in \{-1, 0, 1\} (canonicalized mod p) — secret keys. *)

val random_error : Field.t -> Arb_util.Rng.t -> sigma:float -> int -> int array
(** Rounded-Gaussian error coefficients. *)

val inf_norm : Field.t -> int array -> int
(** Largest centered absolute coefficient. *)

val equal : int array -> int array -> bool
(** Structural equality on coefficient arrays (explicitly monomorphic on
    [int array] — no polymorphic compare). *)
