type t = { p : int; inv_p : float }

let mulmod p a b = a * b mod p
(* Safe because p < 2^31 keeps a*b < 2^62 < max_int. *)

(* Barrett-style reduction via a precomputed floating-point reciprocal.

   For canonical a, b in [0, p) with p < 2^31 the product x = a*b fits in
   62 bits exactly, and the quotient estimate

     q = int_of_float (float a *. float b *. inv_p)

   carries at most three rounding errors (inv_p, the a*b product, the
   final multiply), each bounded by 2^-53 relative — an absolute error
   below 2^31 * 2^-51 << 1 on a true quotient x/p < 2^31.  Truncation can
   therefore land on floor(x/p) - 1, floor(x/p) or floor(x/p) + 1, so
   r = x - q*p lies in (-p, 2p) and two conditional corrections recover
   the exact canonical residue: the result is bit-identical to
   [a * b mod p] while the hot path issues no hardware division
   (qcheck props in test_crypto enforce the equivalence). *)
let[@inline] barrett_mul p inv_p a b =
  let q = int_of_float (float_of_int a *. float_of_int b *. inv_p) in
  let r = (a * b) - (q * p) in
  let r = if r < 0 then r + p else r in
  if r >= p then r - p else r

let powmod p x e =
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mulmod p acc base else acc in
      go acc (mulmod p base base) (e lsr 1)
  in
  go 1 (x mod p) e

(* Deterministic Miller–Rabin with the first nine primes as witnesses is
   exact below 3.3e24, far above our 2^31 bound. *)
let is_prime n =
  if n < 2 then false
  else if n < 4 then true
  else if n mod 2 = 0 then false
  else
    let d = ref (n - 1) and r = ref 0 in
    while !d mod 2 = 0 do
      d := !d / 2;
      incr r
    done;
    let witness a =
      let a = a mod n in
      if a = 0 then true
      else
        let x = ref (powmod n a !d) in
        if !x = 1 || !x = n - 1 then true
        else
          let ok = ref false in
          let i = ref 1 in
          while (not !ok) && !i < !r do
            x := mulmod n !x !x;
            if !x = n - 1 then ok := true;
            incr i
          done;
          !ok
    in
    List.for_all witness [ 2; 3; 5; 7; 11; 13; 17; 19; 23 ]

let create p =
  if p < 2 || p >= 1 lsl 31 then invalid_arg "Field.create: modulus out of range";
  (* Overflow guard, stated explicitly so the bound survives any future
     relaxation of the range check above: products of two reduced elements
     must fit in a 62-bit native int. Written division-style to avoid
     overflowing inside the check itself. *)
  if p > 2 && p - 1 > max_int / (p - 1) then
    invalid_arg "Field.create: (p-1)^2 overflows 62 bits";
  if not (is_prime p) then invalid_arg "Field.create: modulus not prime";
  { p; inv_p = 1.0 /. float_of_int p }

let create_unchecked p = { p; inv_p = 1.0 /. float_of_int p }

let add f a b =
  let s = a + b in
  if s >= f.p then s - f.p else s

let sub f a b =
  let d = a - b in
  if d < 0 then d + f.p else d

let neg f a = if a = 0 then 0 else f.p - a
let mul f a b = barrett_mul f.p f.inv_p a b

let pow f x e =
  if e < 0 then invalid_arg "Field.pow: negative exponent";
  let p = f.p and ip = f.inv_p in
  let rec go acc base e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then barrett_mul p ip acc base else acc in
      go acc (barrett_mul p ip base base) (e lsr 1)
  in
  go 1 (let r = x mod p in if r < 0 then r + p else r) e

let inv f a =
  if a mod f.p = 0 then raise Division_by_zero;
  (* Fermat: a^(p-2). *)
  pow f a (f.p - 2)

let div f a b = mul f a (inv f b)

let of_int f x =
  let r = x mod f.p in
  if r < 0 then r + f.p else r

let center f x =
  let x = of_int f x in
  if x > f.p / 2 then x - f.p else x

let root_of_unity f ~order =
  if order <= 0 || (f.p - 1) mod order <> 0 then raise Not_found;
  let cofactor = (f.p - 1) / order in
  (* Search small candidates for a generator of the order-subgroup. *)
  let rec go g =
    if g >= f.p then raise Not_found
    else
      let w = powmod f.p g cofactor in
      (* w has order dividing [order]; primitive iff w^(order/q) <> 1 for
         every prime q | order. Since our orders are powers of two times a
         small cofactor, it is enough to check w^(order/2) <> 1 when order
         is even, plus w <> 1. *)
      let primitive =
        w <> 1 && (order mod 2 <> 0 || powmod f.p w (order / 2) <> 1)
      in
      if primitive && order mod 2 = 0 then go_check_full w g
      else if primitive then w
      else go (g + 1)
  and go_check_full w g =
    (* Full check for non-power-of-two orders: verify for each prime
       factor. Orders here are always 2^k, so the even check suffices,
       but we keep a complete factor check for safety. *)
    let rec factors n acc d =
      if n = 1 then acc
      else if d * d > n then n :: acc
      else if n mod d = 0 then factors (n / d) (d :: acc) (d)
      else factors n acc (d + 1)
    in
    let primes = List.sort_uniq compare (factors order [] 2) in
    if List.for_all (fun q -> powmod f.p w (order / q) <> 1) primes then w
    else go (g + 1)
  in
  go 2

let random f rng = Arb_util.Rng.int rng f.p
