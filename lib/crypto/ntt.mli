(** Negacyclic number-theoretic transform over Z_p\[X\]/(X^n + 1).

    The workhorse of the BGV substrate: multiplication in the negacyclic
    ring is pointwise multiplication in the NTT domain. We use the
    Longa–Naehrig formulation: forward transform with Cooley–Tukey
    butterflies over bit-reversed powers of psi (a primitive 2n-th root of
    unity), inverse with Gentleman–Sande butterflies — no separate
    bit-reversal pass or power-of-X pre/post scaling needed.

    The production kernels combine Barrett reduction against precomputed
    float twiddle ratios with Harvey-style lazy reduction (coefficients
    held in \[0, 4p) forward / \[0, 2p) inverse between stages, one final
    normalization pass), eliminating hardware division from every inner
    loop while staying bit-identical to the [mod]-based reference kernels
    (DESIGN.md §10; enforced by qcheck props in test_crypto). *)

type plan
(** Precomputed tables for a fixed (n, p): twiddles, their float ratios,
    and the Barrett magic constants. *)

val plan : n:int -> p:int -> plan
(** [plan ~n ~p] requires [n] a power of two and [p] prime with
    [2n | p - 1]. Also rejects moduli whose butterfly products could
    overflow a 62-bit native int: [(p-1)^2 <= max_int] and, for the lazy
    \[0, 4p) accumulators, [p <= 2^30]. Raises [Invalid_argument]
    otherwise. *)

val n : plan -> int
val p : plan -> int

val forward : plan -> int array -> unit
(** In-place forward negacyclic NTT. Array length must equal [n]. Input
    must be canonical (\[0, p)); output is canonical. *)

val inverse : plan -> int array -> unit
(** In-place inverse, including the 1/n scaling. Canonical in/out. *)

val multiply : plan -> int array -> int array -> int array
(** Negacyclic product of two coefficient-domain polynomials (fresh array;
    inputs are not modified). *)

val pointwise : plan -> int array -> int array -> int array
(** Slot-wise product of two NTT-domain vectors. *)

val pointwise_into : plan -> dst:int array -> int array -> int array -> unit
(** Allocation-free {!pointwise}: [dst.(i) <- a.(i)*b.(i) mod p]. [dst]
    may alias either input. *)

val pointwise_add_into :
  plan -> dst:int array -> int array -> int array -> unit
(** Fused multiply-accumulate: [dst.(i) <- dst.(i) + a.(i)*b.(i) mod p].
    The workhorse of NTT-domain relinearization and decryption. *)

(** {2 Reference kernels}

    The seed's hardware-[mod] butterflies, kept verbatim as differential
    oracles for the qcheck bit-equality props and as the pre-PR baseline
    the [crypto_kernels] bench measures speedups against. Not for
    production use. *)

val forward_reference : plan -> int array -> unit
val inverse_reference : plan -> int array -> unit
val multiply_reference : plan -> int array -> int array -> int array

(** {2 Kernel counters}

    Process-lifetime totals, exported as [arb_crypto_*] metrics gauges by
    the runtime's [Trace.export]. [reductions_saved] counts hardware
    divisions the seed kernels would have issued for the same call
    sequence (one per butterfly, per inverse-scaling coefficient, per
    pointwise slot). *)
module Stats : sig
  val transforms : int Atomic.t
  val pointwise_ops : int Atomic.t
  val reductions_saved : int Atomic.t

  val get : unit -> int * int * int
  (** [(transforms, pointwise_ops, reductions_saved)] snapshot. *)
end
