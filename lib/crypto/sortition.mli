(** Committee selection by cryptographic sortition (§5.1).

    Generalizes Honeycrisp's mechanism: for query [i] with public random
    block [B_i], every registered device deterministically signs
    [(B_i, i, 0)] and hashes the signature; the [c*m] devices with the
    lowest hashes form the committees, the device with the x-th lowest hash
    joining committee [x / m]. Determinism prevents grinding; the secret
    block prevents precomputation; each device serves on at most one
    committee. The registered-device set is committed in a Merkle tree that
    travels inside the query authorization certificate, blocking the
    "computational grinding" attack described in §5.2. *)

type device = { id : int; seed : string }
(** A registered device; [seed] is its long-term signing secret. *)

type assignment = {
  committees : int array array;  (** committee -> member device ids *)
  registry_root : Sha256.digest;  (** Merkle root over the device set *)
}

val ticket : device -> block:string -> query_id:int -> Sha256.digest
(** The device's sortition hash for this query (hash of its deterministic
    signature on (block, query id, 0)). *)

val select :
  devices:device array -> block:string -> query_id:int -> committees:int ->
  size:int -> assignment
(** Pick [committees] committees of [size] members each. Raises
    [Invalid_argument] if there are fewer than [committees * size]
    devices. *)

val verify_member :
  devices:device array -> block:string -> query_id:int -> committees:int ->
  size:int -> device:device -> int option
(** Recompute (as any third party can) which committee a given device
    belongs to; [None] if it was not selected. Agrees with [select]. *)

val reassign_failed : assignment -> failed:int -> assignment
(** Committee [failed] lost too many members: move its tasks to committee
    [(failed + 1) mod c] by merging membership (§5.1). *)

(** Hierarchical, seed-derived registry for billion-device sortition.

    The flat {!select} ranks every device — O(N) hashing, hopeless at the
    paper's 10^8–10^9 scale. A [Registry.t] derives the whole population
    from a seed: devices live in blocks of the fixed canonical size
    {!Registry.block_size}, each block holding a PRF seed from which its
    members' signing secrets are derived on demand. Sortition runs in two
    levels — blocks are ranked by a per-block ticket, then only the few
    winning blocks expand their members — so committee selection touches
    O(N / block_size + seats) devices. The Merkle root commits to the
    block-level seed commitments and is therefore computable (and equal)
    whether or not the execution ever materializes the full population:
    certificates from a cohort-sharded run are byte-identical to a fully
    materialized one. *)
module Registry : sig
  type t

  val block_size : int
  (** Canonical registry block size (4096). A protocol constant — the
      certificate's registry root commits to the block structure, so this
      is independent of any runtime cohort/sharding configuration. *)

  val create : seed:int64 -> n:int -> t
  (** Derive the registry for a population of [n] devices. O(n /
      block_size) work and memory. Raises [Invalid_argument] if [n <= 0]. *)

  val size : t -> int
  val n_blocks : t -> int

  val root : t -> Sha256.digest
  (** The registry commitment carried in the query authorization
      certificate. Depends only on (seed, n). *)

  val device_seed : t -> int -> string
  (** The long-term signing secret of device [id], derived from its
      block's PRF seed. O(1); raises [Invalid_argument] out of range. *)

  val device : t -> int -> device

  val select :
    t -> block:string -> query_id:int -> committees:int -> size:int ->
    assignment
  (** Two-level sortition: rank blocks by ticket, expand winning blocks in
      order, rank their members, take the first [committees * size]. Same
      grinding-resistance argument as the flat {!select}; committees are a
      function of (seed, n, block, query_id) only. *)

  val verify_member :
    t -> block:string -> query_id:int -> committees:int -> size:int ->
    id:int -> int option
  (** Third-party recomputation of a device's committee, touching only the
      ranked block list plus the device's own block. Agrees with
      {!Registry.select}. *)
end
