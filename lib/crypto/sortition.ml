type device = { id : int; seed : string }

type assignment = {
  committees : int array array;
  registry_root : Sha256.digest;
}

let message ~block ~query_id = Printf.sprintf "%s|%d|0" block query_id

let ticket device ~block ~query_id =
  (* Deterministic signature, then hash. A keyed MAC stands in for the full
     Lamport signature (same determinism, same unpredictability before the
     block is revealed) so ranking a billion simulated devices stays cheap;
     the runtime still produces and checks real Lamport signatures where
     integrity matters (the query authorization certificate). *)
  Sha256.digest (Sha256.hmac ~key:device.seed (message ~block ~query_id))

let ranked ~devices ~block ~query_id =
  let tickets =
    Array.map (fun d -> (ticket d ~block ~query_id, d.id)) devices
  in
  Array.sort
    (fun (h1, id1) (h2, id2) ->
      let c = Sha256.compare_le h1 h2 in
      if c <> 0 then c else compare id1 id2)
    tickets;
  tickets

let registry_root devices =
  Merkle.root
    (Merkle.build
       (Array.map
          (fun d -> Printf.sprintf "%d|%s" d.id (Sha256.to_hex (Sha256.digest d.seed)))
          devices))

let select ~devices ~block ~query_id ~committees ~size =
  if committees * size > Array.length devices then
    invalid_arg "Sortition.select: not enough devices";
  if committees <= 0 || size <= 0 then invalid_arg "Sortition.select: bad shape";
  let tickets = ranked ~devices ~block ~query_id in
  let cs =
    Array.init committees (fun c ->
        Array.init size (fun j -> snd tickets.((c * size) + j)))
  in
  { committees = cs; registry_root = registry_root devices }

let verify_member ~devices ~block ~query_id ~committees ~size ~device =
  let tickets = ranked ~devices ~block ~query_id in
  let rank = ref None in
  Array.iteri (fun i (_, id) -> if id = device.id then rank := Some i) tickets;
  match !rank with
  | Some r when r < committees * size -> Some (r / size)
  | _ -> None

(* --- hierarchical registry (billion-device sortition) ---

   The flat [select]/[verify_member] above rank every registered device,
   which is O(N) hashing — fine for the simulation sizes the tests use,
   hopeless at the paper's 10^8-10^9 devices. [Registry] derives the whole
   population from a seed and runs sortition in two levels: registry
   blocks of a fixed canonical size are ranked first (one PRF evaluation
   per block), then only the winning blocks expand their members. The
   committee assignment and the Merkle root are functions of (seed, N,
   block, query) alone — independent of how the runtime chooses to shard
   cohorts — so a sharded execution produces byte-identical certificates
   to a fully materialized one. *)

module Registry = struct
  type t = {
    n : int;
    block_seeds : string array; (* keyed PRF seed per registry block *)
    root : Sha256.digest;
  }

  (* Canonical block size: a protocol constant, NOT a runtime tuning knob.
     Certificates commit to the block-level tree, so this value changing
     would change every registry root. *)
  let block_size = 4096

  let create ~seed ~n =
    if n <= 0 then invalid_arg "Sortition.Registry.create: n <= 0";
    let n_blocks = (n + block_size - 1) / block_size in
    let master = Printf.sprintf "reg|%Ld|%d" seed n in
    let block_seeds =
      Array.init n_blocks (fun b -> Sha256.hmac ~key:master (Printf.sprintf "blk|%d" b))
    in
    (* Leaf = (block index, population, commitment to the block seed):
       enough for any third party holding the block seeds to recompute the
       root, without the tree ever being O(N). *)
    let leaves =
      Array.init n_blocks (fun b ->
          let size = min block_size (n - (b * block_size)) in
          Printf.sprintf "%d|%d|%s" b size
            (Sha256.to_hex (Sha256.digest block_seeds.(b))))
    in
    { n; block_seeds; root = Merkle.root (Merkle.build leaves) }

  let size t = t.n
  let n_blocks t = Array.length t.block_seeds
  let root t = t.root

  let device_seed t id =
    if id < 0 || id >= t.n then invalid_arg "Sortition.Registry.device_seed";
    Sha256.hmac ~key:t.block_seeds.(id / block_size)
      (string_of_int (id mod block_size))

  let device t id = { id; seed = device_seed t id }

  let block_population t b = min block_size (t.n - (b * block_size))

  let block_ticket t b ~block ~query_id =
    Sha256.digest
      (Sha256.hmac ~key:t.block_seeds.(b) (message ~block ~query_id ^ "|blk"))

  let ranked_blocks t ~block ~query_id =
    let a =
      Array.init (n_blocks t) (fun b -> (block_ticket t b ~block ~query_id, b))
    in
    Array.sort
      (fun (h1, b1) (h2, b2) ->
        let c = Sha256.compare_le h1 h2 in
        if c <> 0 then c else compare b1 b2)
      a;
    a

  (* Members of block [b] in their within-block ticket order. *)
  let ranked_in_block t b ~block ~query_id =
    let lo = b * block_size in
    let tickets =
      Array.init (block_population t b) (fun j ->
          let id = lo + j in
          (ticket (device t id) ~block ~query_id, id))
    in
    Array.sort
      (fun (h1, i1) (h2, i2) ->
        let c = Sha256.compare_le h1 h2 in
        if c <> 0 then c else compare i1 i2)
      tickets;
    Array.map snd tickets

  let select t ~block ~query_id ~committees ~size =
    if committees <= 0 || size <= 0 then invalid_arg "Sortition.select: bad shape";
    let seats = committees * size in
    if seats > t.n then invalid_arg "Sortition.select: not enough devices";
    let rb = ranked_blocks t ~block ~query_id in
    let winners = Array.make seats (-1) in
    let filled = ref 0 and bi = ref 0 in
    while !filled < seats do
      let _, b = rb.(!bi) in
      incr bi;
      Array.iter
        (fun id ->
          if !filled < seats then begin
            winners.(!filled) <- id;
            incr filled
          end)
        (ranked_in_block t b ~block ~query_id)
    done;
    let cs =
      Array.init committees (fun c ->
          Array.init size (fun j -> winners.((c * size) + j)))
    in
    { committees = cs; registry_root = t.root }

  (* Agrees with [select] because select consumes whole blocks in ranked
     order and truncates: the device's global rank is the population of
     every block ranked before its own plus its within-block rank. *)
  let verify_member t ~block ~query_id ~committees ~size ~id =
    if id < 0 || id >= t.n then None
    else begin
      let seats = committees * size in
      let my_block = id / block_size in
      let rb = ranked_blocks t ~block ~query_id in
      let consumed = ref 0 and start = ref None in
      (try
         Array.iter
           (fun (_, b) ->
             if b = my_block then begin
               start := Some !consumed;
               raise Exit
             end
             else consumed := !consumed + block_population t b)
           rb
       with Exit -> ());
      match !start with
      | Some s when s < seats -> (
          let members = ranked_in_block t my_block ~block ~query_id in
          let pos = ref None in
          Array.iteri (fun j id' -> if id' = id then pos := Some j) members;
          match !pos with
          | Some p when s + p < seats -> Some ((s + p) / size)
          | _ -> None)
      | _ -> None
    end
end

let reassign_failed asg ~failed =
  let c = Array.length asg.committees in
  if failed < 0 || failed >= c then invalid_arg "Sortition.reassign_failed";
  let target = (failed + 1) mod c in
  let committees =
    Array.mapi
      (fun i members ->
        if i = failed then [||]
        else if i = target then Array.append members asg.committees.(failed)
        else members)
      asg.committees
  in
  { asg with committees }
