(** BGV-style RLWE homomorphic encryption, built from scratch.

    The scheme follows Brakerski–Gentry–Vaikuntanathan with least-
    significant-bit message encoding: a ciphertext (c0, c1) under secret s
    satisfies c0 + c1·s = m + t·e (mod q), where t is the plaintext modulus
    and e a small error. Additions are componentwise; multiplication tensors
    two ciphertexts into a degree-2 ciphertext that can either be decrypted
    directly (with s^2) or relinearized back to degree 1 via an RNS-gadget
    key-switching key.

    The ciphertext modulus q is a product of one or two NTT-friendly primes
    below 2^31, held in RNS form so that every coefficient operation stays in
    native 63-bit ints (DESIGN.md §1: scaled-down parameters, real algorithm).
    One prime gives the cheap additive profile the planner calls AHE; two
    primes give enough noise budget for depth-1 multiplication (FHE profile).

    Plaintexts are vectors of up to n values mod t, packed into slots via an
    NTT over Z_t (t is chosen with 2n | t-1 so the plaintext ring splits
    completely); slot-wise addition and multiplication are then the
    homomorphic operations, exactly what the paper's one-hot-encoded
    aggregation needs.

    Representation (DESIGN.md §10): ciphertexts, public keys and key-switch
    keys are held in NTT (evaluation) form end-to-end — homomorphic add is
    a coefficient-wise map, mul/relinearize are pointwise products with no
    redundant transforms — with conversion to coefficient form only at the
    encode/decode, serialize and relin-digit/galois boundaries. The wire
    format is coefficient-form and byte-identical to the seed's. *)

type params = {
  n : int;  (** ring dimension, a power of two *)
  q_primes : int list;  (** RNS basis of the ciphertext modulus *)
  t : int;  (** plaintext modulus, prime, 2n | t-1 *)
  sigma : float;  (** error std-dev *)
}

val ahe_params : ?n:int -> ?min_t:int -> unit -> params
(** Single-prime additive profile. Default n = 2048; [min_t] lower-bounds the
    plaintext modulus (default 12289-class). *)

val fhe_params : ?n:int -> ?min_t:int -> unit -> params
(** Two-prime profile with depth-1 multiplicative budget. Default n = 2048. *)

val validate : params -> unit
(** Raises [Invalid_argument] on inconsistent parameters. *)

val find_plaintext_modulus : n:int -> min_t:int -> int
(** Smallest prime t >= min_t with 2n | t-1. *)

type secret_key
type public_key
type relin_key
type ciphertext

val ciphertext_degree : ciphertext -> int
(** 1 for fresh/added ciphertexts, 2 after an unrelinearized multiply. *)

val noise_budget_bits : ciphertext -> float
(** Estimated remaining bits before decryption failure (log-domain model,
    validated by tests). Negative means decryption may fail. *)

val keygen : params -> Arb_util.Rng.t -> secret_key * public_key
val relin_keygen : params -> Arb_util.Rng.t -> secret_key -> relin_key

val encrypt : public_key -> Arb_util.Rng.t -> int array -> ciphertext
(** Encrypt a slot vector (length <= n; padded with zeros). Values are
    reduced mod t. Equivalent to {!sample_encrypt_randomness} followed by
    {!encrypt_with_randomness}. *)

type encrypt_randomness
(** The random tape one encryption consumes: ternary u, Gaussian e1, e2. *)

val sample_encrypt_randomness :
  public_key -> Arb_util.Rng.t -> encrypt_randomness
(** Draw an encryption's randomness from [rng] (in the exact order
    {!encrypt} would), so callers can sample sequentially in canonical
    order and run the deterministic arithmetic half in parallel. *)

val encrypt_with_randomness :
  public_key -> encrypt_randomness -> int array -> ciphertext
(** Deterministic compute half of {!encrypt}: no RNG access, safe to fan
    out over domains. [encrypt pk rng slots] and
    [encrypt_with_randomness pk (sample_encrypt_randomness pk rng) slots]
    produce identical ciphertexts. *)

val encrypt_with_sk : secret_key -> Arb_util.Rng.t -> int array -> ciphertext
(** Symmetric-key encryption (slightly less noise); used in tests. *)

val decrypt : secret_key -> ciphertext -> int array
(** Full slot vector (length n), entries in \[0, t). Handles degree 1 and 2. *)

val add : ciphertext -> ciphertext -> ciphertext
val sub : ciphertext -> ciphertext -> ciphertext

val accumulate : ciphertext -> ciphertext -> ciphertext
(** [accumulate acc ct] is {!add} but reuses [acc]'s coefficient storage
    in place (allocation-free steady state for long aggregation folds);
    [acc] must not be used by the caller afterwards. Result values and
    noise bookkeeping are identical to [add acc ct]. *)

val add_plain : ciphertext -> int array -> ciphertext
val mul_plain : ciphertext -> int array -> ciphertext
(** Slot-wise product with a cleartext vector. *)

val mul : ciphertext -> ciphertext -> ciphertext
(** Tensor product; result has degree 2. Requires both inputs degree 1. *)

val relinearize : relin_key -> ciphertext -> ciphertext
(** Degree 2 -> degree 1 via RNS-gadget key switching. *)

val params_of_ct : ciphertext -> params

val ciphertext_bytes : params -> int -> int
(** [ciphertext_bytes p degree] — serialized size: (degree+1) polynomials,
    4 bytes per residue coefficient. *)

val public_key_bytes : params -> int
val slot_count : params -> int

(** {2 Threshold decryption} — used by decryption committees (§5.2/§5.4). *)

val share_secret_key :
  params -> Arb_util.Rng.t -> secret_key -> parties:int -> secret_key array
(** Additive sharing of s: the shares sum to s coefficient-wise. Each share
    is itself a (large-norm) secret key fragment. *)

val partial_decrypt :
  params -> Arb_util.Rng.t -> secret_key -> ciphertext -> int array list
(** One party's decryption share for a degree-1 ciphertext: c1·s_i plus
    smudging noise, per RNS prime. *)

val combine_partials : params -> ciphertext -> int array list list -> int array
(** Combine all parties' shares with c0 to recover the plaintext slots. *)

(** {2 Galois automorphisms / slot rotations}

    A ciphertext can be mapped through x -> x^k (k odd), which permutes its
    plaintext slots; a key-switch with a Galois key returns it to the
    original secret key. For power-of-two cyclotomics the subgroup
    generated by k = 3 rotates the two slot "rows" — the primitive behind
    homomorphic prefix sums (the planner's heRotate instantiation). *)

type galois_key

val rotation_generator : params -> int
(** The rotation generator (3). *)

val galois_keygen :
  params -> Arb_util.Rng.t -> secret_key -> k:int -> galois_key
(** Key-switching key for sigma_k; [k] must be odd. *)

val apply_galois : galois_key -> ciphertext -> ciphertext
(** Apply sigma_k homomorphically (degree-1 ciphertexts). The slots are
    permuted by {!slot_rotation_of_galois}. *)

val slot_rotation_of_galois : params -> k:int -> int array
(** [perm] such that input slot [i] lands in output slot [perm.(i)];
    derived from the encoding and cached. *)

(** {2 Serialization} — the wire format devices upload; its length is what
    the byte accounting charges (validated against [ciphertext_bytes] by
    tests). *)

val serialize_ciphertext : ciphertext -> string

val serialize_public_key : public_key -> string
(** Canonical coefficient-form bytes of (a, b) with a small parameter
    header; representation-independent, suitable for certificate
    digests. *)

val deserialize_ciphertext : params -> string -> ciphertext
(** Raises [Invalid_argument] on parameter mismatch, truncation, or
    non-canonical coefficients (a malformed upload). *)

val serialized_bytes : params -> int -> int
(** Exact wire size for a given degree: a 14-byte header plus
    [ciphertext_bytes]. Use this (not [String.length] of
    {!serialize_ciphertext}) when only the byte count is needed — e.g. the
    runtime's upload accounting. *)

val scratch_words_allocated : unit -> int
(** Words of scratch workspace per parameter context created so far (the
    allocation gauge exported as [arb_crypto_scratch_words] by the
    runtime). Counted once per context rather than per worker domain, so
    the value is independent of how many domains fan out. *)
