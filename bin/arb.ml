(* arb — command-line front end for the Arboretum planner and runtime.

   Subcommands:
     arb plan   --query top1 --n 1000000000        plan and explain
     arb run    --query top1 --devices 256         plan + execute at sim scale
     arb certify --query median                    certification report
     arb serve  --workload file.json --workers 4   multi-query service
     arb calibrate --from snaps/ --out calib.json  fit the cost model
     arb list                                      the built-in queries

   `arb plan --json`, `arb list --json` and `arb serve --json` emit
   machine-readable output for workload tooling. *)

open Cmdliner

let query_arg =
  let doc = "Built-in query name (see `arb list`)." in
  Arg.(value & opt string "top1" & info [ "query"; "q" ] ~docv:"NAME" ~doc)

let n_arg =
  let doc = "Deployment size (number of participants) for planning." in
  Arg.(value & opt int 1_000_000_000 & info [ "n" ] ~docv:"N" ~doc)

let categories_arg =
  let doc = "Override the category count (default: the paper's setting)." in
  Arg.(value & opt (some int) None & info [ "categories"; "c" ] ~docv:"C" ~doc)

let epsilon_arg =
  let doc = "Per-mechanism epsilon." in
  Arg.(value & opt float 0.1 & info [ "epsilon"; "e" ] ~docv:"EPS" ~doc)

let devices_arg =
  let doc = "Simulated device count for execution." in
  Arg.(value & opt int 128 & info [ "devices"; "d" ] ~docv:"D" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc)

let goal_arg =
  let goals =
    [
      ("part-exp-time", Arb_planner.Constraints.Min_part_exp_time);
      ("part-max-time", Arb_planner.Constraints.Min_part_max_time);
      ("part-exp-bytes", Arb_planner.Constraints.Min_part_exp_bytes);
      ("part-max-bytes", Arb_planner.Constraints.Min_part_max_bytes);
      ("agg-time", Arb_planner.Constraints.Min_agg_time);
      ("agg-bytes", Arb_planner.Constraints.Min_agg_bytes);
    ]
  in
  let doc = "Optimization goal: " ^ String.concat ", " (List.map fst goals) ^ "." in
  Arg.(
    value
    & opt (enum goals) Arb_planner.Constraints.Min_part_exp_time
    & info [ "goal" ] ~docv:"GOAL" ~doc)

let verbose_arg =
  let doc = "Log planner and runtime progress to stderr." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let tolerance_arg =
  let doc =
    "Analyst error tolerance in (0, 1]: admit approximate plan variants \
     (device sampling, sketches) whose estimated relative error stays \
     within $(docv). Omit for exact plans only."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "error-tolerance" ] ~docv:"TOL" ~doc)

let check_tolerance = function
  | Some tol when not (tol > 0.0 && tol <= 1.0) ->
      Error
        (`Msg (Printf.sprintf "--error-tolerance must be in (0, 1], got %g" tol))
  | t -> Ok t

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let build_query ?tolerance name categories epsilon =
  match check_tolerance tolerance with
  | Error e -> Error e
  | Ok tolerance -> (
      try
        Ok
          (Arboretum.builtin_query ~epsilon ?error_tolerance:tolerance
             ?categories name)
      with Not_found ->
        Error (`Msg (Printf.sprintf "unknown query %S; try `arb list`" name)))

let json_arg =
  let doc = "Emit the chosen plan and its cost metrics as JSON." in
  Arg.(value & flag & info [ "json" ] ~doc)

(* --- observability flags shared by plan/run/serve --- *)

let trace_out_arg =
  let doc =
    "Write a Chrome trace_event JSON file of the command's span tree \
     (load it in chrome://tracing or https://ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let metrics_out_arg =
  let doc = "Write a Prometheus-style text snapshot of the metrics registry." in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let trace_det_arg =
  let doc =
    "Deterministic observability: spans carry logical ticks instead of wall \
     timestamps and wall-clock instruments are suppressed, so the trace and \
     metrics bytes are identical across runs (and across --workers values)."
  in
  Arg.(value & flag & info [ "trace-deterministic" ] ~doc)

(* A tracer exists when a trace file was requested or deterministic mode is
   on (the flag also gates the registry's wall-clock instruments). *)
let obs_tracer ~clock ~trace_out ~deterministic =
  if trace_out <> None || deterministic then
    Some
      (Arb_obs.Tracer.create
         ~clock:(if deterministic then Arb_obs.Clock.Deterministic else clock)
         ())
  else None

(* Notes go to stderr so --json stdout stays machine-readable. *)
let obs_save ~trace_out ~metrics_out tracer metrics =
  (match (tracer, trace_out) with
  | Some tr, Some path ->
      Arb_obs.Tracer.save tr path;
      Printf.eprintf "trace: %d events written to %s\n%!"
        (Arb_obs.Tracer.event_count tr)
        path
  | _ -> ());
  match (metrics, metrics_out) with
  | Some reg, Some path -> Arb_obs.Metrics.save reg path
  | _ -> ()

let calibration_arg =
  let doc =
    "Price candidate plans with the fitted cost model from this calibration \
     file (see `arb calibrate`). Unreadable, malformed or future-version \
     files fall back to the built-in constants with a warning."
  in
  Arg.(value & opt (some string) None & info [ "calibration" ] ~docv:"FILE" ~doc)

let snapshots_arg =
  let doc =
    "Append a tagged metrics-registry snapshot to this directory's store \
     (snapshots.jsonl) — the ground truth `arb calibrate --from` fits. \
     `serve` also appends after every drain."
  in
  Arg.(value & opt (some string) None & info [ "snapshots" ] ~docv:"DIR" ~doc)

(* Resolve --calibration; failures demote to the defaults with the typed
   reason on stderr so --json stdout stays machine-readable. *)
let load_calibration = function
  | None -> Arb_planner.Calibration.default
  | Some path ->
      let calib, err = Arb_planner.Calibration.load_or_default path in
      (match err with
      | Some e ->
          Printf.eprintf "calibration: %s; using built-in defaults\n%!"
            (Arb_planner.Calibration.error_message e)
      | None -> ());
      calib

let snapshot_append ~dir ~tag reg =
  try Arb_obs.Snapshot.append ~dir ~tag reg
  with
  | Sys_error m -> Printf.eprintf "snapshot append failed: %s\n%!" m
  | Unix.Unix_error (e, _, _) ->
      Printf.eprintf "snapshot append failed: %s\n%!" (Unix.error_message e)

let metrics_series reg =
  List.length
    (List.filter
       (fun l -> l <> "" && l.[0] <> '#')
       (String.split_on_char '\n' (Arb_obs.Metrics.to_prometheus reg)))

let plan_cmd =
  let run verbose name n categories epsilon tolerance goal json calibration
      trace_out metrics_out det =
    setup_logs verbose;
    match build_query ?tolerance name categories epsilon with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok q ->
        let tracer =
          obs_tracer ~clock:Arb_obs.Clock.Monotonic ~trace_out ~deterministic:det
        in
        let metrics =
          if metrics_out <> None then Some (Arb_obs.Metrics.create ()) else None
        in
        let calib = load_calibration calibration in
        let code =
          match
            Arboretum.plan ~cm:calib.Arb_planner.Calibration.constants ~goal
              ?tracer ?metrics ~n q
          with
          | p ->
              if json then
                print_endline
                  (Arb_util.Json.to_string ~pretty:true
                     (Arb_util.Json.Obj
                        [
                          ("plan", Arb_planner.Plan_io.plan_to_json p.Arboretum.plan);
                          ("metrics", Arb_planner.Plan_io.metrics_to_json p.Arboretum.metrics);
                        ]))
              else print_string (Arboretum.explain p);
              0
          | exception Arboretum.Rejected m ->
              Printf.eprintf "rejected: %s\n" m;
              1
        in
        (* The search spans exist even when the plan was rejected. *)
        obs_save ~trace_out ~metrics_out tracer metrics;
        code
  in
  let term =
    Term.(
      const run $ verbose_arg $ query_arg $ n_arg $ categories_arg $ epsilon_arg
      $ tolerance_arg $ goal_arg $ json_arg $ calibration_arg $ trace_out_arg
      $ metrics_out_arg $ trace_det_arg)
  in
  Cmd.v (Cmd.info "plan" ~doc:"Certify a query and print the chosen plan with its costs.") term

let certify_cmd =
  let run name n categories epsilon =
    match build_query name categories epsilon with
    | Error (`Msg m) -> prerr_endline m; 1
    | Ok q ->
        let r = Arboretum.certify q ~n in
        if r.Arb_lang.Certify.certified then begin
          Format.printf
            "certified: privacy cost %a, sensitivity %.2f, %d mechanism call(s)@."
            Arb_dp.Budget.pp r.Arb_lang.Certify.cost r.Arb_lang.Certify.sensitivity
            r.Arb_lang.Certify.mechanism_calls;
          0
        end
        else begin
          Format.printf "rejected: %s@."
            (Option.value r.Arb_lang.Certify.reason ~default:"?");
          1
        end
  in
  let term = Term.(const run $ query_arg $ n_arg $ categories_arg $ epsilon_arg) in
  Cmd.v (Cmd.info "certify" ~doc:"Run differential-privacy certification only.") term

let run_cmd =
  let run verbose name devices epsilon tolerance seed workers cohort_size
      sampled_cohorts calibration snapshots trace_out metrics_out det =
    setup_logs verbose;
    (match check_tolerance tolerance with
    | Error (`Msg m) -> prerr_endline m; exit 1
    | Ok _ -> ());
    (* Execution uses a small category count so the whole protocol fits in
       one process with real ciphertexts. *)
    let q =
      try
        {
          (Arb_queries.Registry.test_instance ~epsilon name) with
          Arb_queries.Registry.error_tolerance = tolerance;
        }
      with Not_found ->
        prerr_endline ("unknown query " ^ name);
        exit 1
    in
    (* Execution spans sit on the protocol's simulated timeline: the
       runtime advances this clock by its MPC and upload estimates. *)
    let tracer =
      obs_tracer
        ~clock:(Arb_obs.Clock.Simulated (Arb_obs.Clock.sim ()))
        ~trace_out ~deterministic:det
    in
    let metrics =
      (* --snapshots needs a registry even without --metrics-out: the
         residual samples it persists live there. *)
      if metrics_out <> None || snapshots <> None then
        Some (Arb_obs.Metrics.create ())
      else None
    in
    let calib = load_calibration calibration in
    let cm = calib.Arb_planner.Calibration.constants in
    let code =
      match
        let p =
          Arboretum.plan ~cm ~limits:Arb_planner.Constraints.no_limits ?tracer
            ?metrics ~n:devices q
        in
        match cohort_size with
        | None ->
            let db =
              Arboretum.synthesize_database ~seed:(Int64.of_int seed) q ~n:devices
            in
            let config =
              { Arb_runtime.Exec.default_config with tracer; workers }
            in
            (p, Arboretum.run ~config ~db p)
        | Some cohort_size ->
            (* Sharded: never materialize the database — stream rows from an
               indexed source, real crypto for the sampled cohorts only. *)
            let src =
              {
                Arb_runtime.Exec.n_devices = devices;
                row =
                  Arb_queries.Registry.device_source ~seed:(Int64.of_int seed) q;
              }
            in
            let config =
              {
                Arb_runtime.Exec.default_config with
                tracer;
                workers;
                sharding =
                  Arb_runtime.Exec.Sharded { cohort_size; sampled_cohorts };
              }
            in
            (p, Arboretum.run_source ~config ~src p)
      with
      | planned, report ->
          Printf.printf "outputs: %s\n"
            (String.concat "; " (Arboretum.outputs_to_strings report));
          Printf.printf
            "inputs accepted/rejected: %d/%d; certificate ok: %b; audit ok: %b\n"
            report.Arb_runtime.Exec.accepted_inputs
            report.Arb_runtime.Exec.rejected_inputs
            report.Arb_runtime.Exec.certificate_ok report.Arb_runtime.Exec.audit_ok;
          Format.printf "trace: %a@." Arb_runtime.Trace.pp report.Arb_runtime.Exec.trace;
          (match metrics with
          | Some reg ->
              Arb_runtime.Trace.export report.Arb_runtime.Exec.trace reg;
              Arb_planner.Calibration.record reg
                (Arb_runtime.Exec.cost_samples ~cm
                   ~plan:planned.Arboretum.plan
                   ~cols:q.Arb_queries.Registry.categories
                   ~m:
                     Arb_runtime.Exec.default_config
                       .Arb_runtime.Exec.committee_size report)
          | None -> ());
          0
      | exception Arboretum.Rejected m ->
          Printf.eprintf "rejected: %s\n" m;
          1
    in
    obs_save ~trace_out ~metrics_out tracer metrics;
    (match (snapshots, metrics) with
    | Some dir, Some reg -> snapshot_append ~dir ~tag:"run" reg
    | _ -> ());
    code
  in
  let workers_arg =
    let doc =
      "OCaml domains for the parallel encrypt/aggregate stages. Reports and \
       traces are byte-identical at any worker count."
    in
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"K" ~doc)
  in
  let cohort_size_arg =
    let doc =
      "Shard the population into cohorts of $(docv) devices and run real \
       cryptography for a sample of them, extrapolating the rest from exact \
       per-cohort plaintext sums — outputs, budget and certificate are \
       bit-identical to the full run, but memory stays O(cohort) so \
       --devices can be 10^8+. Omit to materialize every device."
    in
    Arg.(value & opt (some int) None & info [ "cohort-size" ] ~docv:"C" ~doc)
  in
  let sampled_cohorts_arg =
    let doc = "How many cohorts run with real ciphertexts (with --cohort-size)." in
    Arg.(value & opt int 2 & info [ "sampled-cohorts" ] ~docv:"K" ~doc)
  in
  let term =
    Term.(
      const run $ verbose_arg $ query_arg $ devices_arg $ epsilon_arg
      $ tolerance_arg $ seed_arg $ workers_arg $ cohort_size_arg
      $ sampled_cohorts_arg $ calibration_arg $ snapshots_arg $ trace_out_arg
      $ metrics_out_arg $ trace_det_arg)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Plan and execute a query end to end at simulation scale with real cryptography.")
    term

let verify_cmd =
  let run verbose name devices epsilon seed =
    setup_logs verbose;
    let q =
      try Arb_queries.Registry.test_instance ~epsilon name
      with Not_found ->
        prerr_endline ("unknown query " ^ name);
        exit 1
    in
    let db = Arboretum.synthesize_database ~seed:(Int64.of_int seed) q ~n:devices in
    match Arboretum.plan ~limits:Arb_planner.Constraints.no_limits ~n:devices q with
    | exception Arboretum.Rejected m ->
        Printf.eprintf "rejected: %s\n" m;
        1
    | planned ->
        let budget_before = Arb_dp.Budget.create ~epsilon:1000.0 ~delta:0.01 in
        let config = { Arb_runtime.Exec.default_config with budget = budget_before } in
        let report = Arboretum.run ~config ~db planned in
        Printf.printf "outputs: %s\n"
          (String.concat "; " (Arboretum.outputs_to_strings report));
        let findings =
          Arb_runtime.Verify.verify_report ~query:q
            ~plan:planned.Arboretum.plan ~budget_before ~n_devices:devices report
        in
        Format.printf "%a" Arb_runtime.Verify.pp_findings findings;
        if Arb_runtime.Verify.all_ok findings then 0 else 1
  in
  let term =
    Term.(const run $ verbose_arg $ query_arg $ devices_arg $ epsilon_arg $ seed_arg)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Plan, execute and independently verify a run: certificate signatures, plan commitment, budget arithmetic, audits.")
    term

let list_cmd =
  let run json =
    if json then
      print_endline
        (Arb_util.Json.to_string ~pretty:true
           (Arb_util.Json.List
              (List.map
                 (fun name ->
                   let q = Arb_queries.Registry.paper_instance name in
                   Arb_util.Json.Obj
                     [
                       ("name", Arb_util.Json.String name);
                       ("action", Arb_util.Json.String q.Arb_queries.Registry.action);
                       ("source", Arb_util.Json.String q.Arb_queries.Registry.source);
                       ("categories", Arb_util.Json.Int q.Arb_queries.Registry.categories);
                       ( "mechanism",
                         Arb_util.Json.String
                           (if q.Arb_queries.Registry.uses_em then "exponential"
                            else "laplace") );
                       ( "lines",
                         Arb_util.Json.Int
                           (Arb_lang.Ast.count_lines q.Arb_queries.Registry.program) );
                     ])
                 Arb_queries.Registry.names)))
    else
      List.iter
        (fun name ->
          let q = Arb_queries.Registry.paper_instance name in
          Printf.printf "%-9s %-28s (C=%d, %s, %d lines)\n" name
            q.Arb_queries.Registry.action q.Arb_queries.Registry.categories
            (if q.Arb_queries.Registry.uses_em then "exponential mech."
             else "Laplace mech.")
            (Arb_lang.Ast.count_lines q.Arb_queries.Registry.program))
        Arb_queries.Registry.names;
    0
  in
  let json_arg =
    let doc = "Emit the query list as JSON (for workload tooling)." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in evaluation queries (Table 2).")
    Term.(const run $ json_arg)

let print_sessions_text engine =
  List.iter
    (fun v ->
      Format.printf
        "session %s: query %s every %d epoch(s), %d run(s) (%d cold, %d \
         replanned, %d revalidated), %d window refusal(s)%s@."
        v.Arb_continual.Engine.v_name v.Arb_continual.Engine.v_query
        v.Arb_continual.Engine.v_every v.Arb_continual.Engine.v_runs
        v.Arb_continual.Engine.v_cold v.Arb_continual.Engine.v_replans
        v.Arb_continual.Engine.v_revalidations
        v.Arb_continual.Engine.v_window_refusals
        (match v.Arb_continual.Engine.v_estimate with
        | [] -> ""
        | e -> "; estimate " ^ String.concat "; " e);
      match v.Arb_continual.Engine.v_window with
      | Some w ->
          Format.printf "  window %a@." Arb_dp.Budget.Window.pp w
      | None -> ())
    (Arb_continual.Engine.sessions engine)

let serve_summary ?engine service records ~json reg =
  let counters = Arb_service.Service.counters service in
  if json then
    print_endline
      (Arb_util.Json.to_string ~pretty:true
         (Arb_util.Json.Obj
            ([
              ( "records",
                Arb_util.Json.List
                  (List.map
                     (Arb_service.Lifecycle.to_json ~timings:true)
                     records) );
              ("counters", Arb_service.Lifecycle.counters_to_json counters);
              ( "budgetLeft",
                Arb_util.Json.Obj
                  [
                    ( "epsilon",
                      Arb_util.Json.Float
                        (Arb_service.Service.budget_left service)
                          .Arb_dp.Budget.epsilon );
                    ( "delta",
                      Arb_util.Json.Float
                        (Arb_service.Service.budget_left service)
                          .Arb_dp.Budget.delta );
                  ] );
              ( "chainVerifies",
                Arb_util.Json.Bool
                  (Arb_service.Service.chain_verifies service) );
              ( "calibration",
                Arb_util.Json.String
                  (Arb_service.Service.calibration_fingerprint service) );
              ("metrics", Arb_obs.Metrics.to_json reg);
            ]
            @
            (match engine with
            | Some e when Arb_continual.Engine.sessions e <> [] ->
                [ ("continual", Arb_continual.Engine.to_json e) ]
            | _ -> []))))
  else begin
    List.iter
      (fun r -> Format.printf "%a@." Arb_service.Lifecycle.pp r)
      records;
    Format.printf
      "---@.%d submitted: %d executed (%d cache hits, %d planned), %d \
       refused, %d failed@."
      counters.Arb_service.Lifecycle.submitted
      counters.Arb_service.Lifecycle.executed
      counters.Arb_service.Lifecycle.cache_hits
      counters.Arb_service.Lifecycle.planned
      counters.Arb_service.Lifecycle.refused
      counters.Arb_service.Lifecycle.failed;
    Format.printf "budget left %a; certificate chain verifies: %b@."
      Arb_dp.Budget.pp
      (Arb_service.Service.budget_left service)
      (Arb_service.Service.chain_verifies service)
  end

(* The network front door: service + API executor + HTTP server, running
   until SIGINT or POST /v1/stop, then a graceful drain of both the
   connection queue and the submission queue before the summary prints. *)
let serve_listen ~host ~port ~max_queue ~http_workers ~workers ~timeout
    ~epoch_interval ~workload ~devices ~seed ~cache_dir ~calib ~snapshots
    ~live_fp ~json ~tracer reg =
  let budget =
    match Option.bind workload (fun w -> w.Arb_service.Workload.budget) with
    | Some b -> b
    | None -> Arb_dp.Budget.create ~epsilon:10.0 ~delta:1e-6
  in
  let devices =
    match devices with
    | Some d -> d
    | None ->
        Option.value ~default:64
          (Option.bind workload (fun w -> w.Arb_service.Workload.devices))
  in
  let seed =
    match seed with
    | Some s -> s
    | None ->
        Option.value ~default:7
          (Option.bind workload (fun w -> w.Arb_service.Workload.seed))
  in
  let cache = Arb_service.Cache.create ?dir:cache_dir () in
  let service =
    Arb_service.Service.create ~cache ~metrics:reg ~calibration:calib
      ?snapshots:(Option.map (fun d -> (d, "serve")) snapshots)
      ~budget ~devices ~seed ()
  in
  (* Recurring workload entries become continual sessions rather than
     preloaded one-shots; the engine's routes mount on the API's [extra]
     hook, so /v1/sessions and /v1/epoch share the same front door. *)
  let engine = Arb_continual.Engine.create ~service () in
  (* Seed the engine's fingerprint with the calibration actually pricing
     plans, so a later PUT of the same file is a no-op, not a re-plan. *)
  Arb_continual.Engine.set_calibration engine
    calib.Arb_planner.Calibration.fingerprint;
  (match workload with
  | Some w ->
      List.iter
        (fun sub ->
          match Arb_continual.Engine.register engine ~carry_state:true sub with
          | Ok name -> Printf.eprintf "session %s registered\n%!" name
          | Error m -> Printf.eprintf "cannot register session: %s\n%!" m)
        (Arb_service.Workload.recurring w)
  | None -> ());
  let api =
    Arb_service.Api.create
      ~config:
        {
          Arb_service.Api.max_queue;
          drain_workers = workers;
          check_budget = true;
        }
      ?tracer
      ~extra:(Arb_continual.Routes.handler ?tracer ~workers engine)
      ~service ()
  in
  (match workload with
  | Some w -> Arb_service.Api.preload api (Arb_service.Workload.expand w)
  | None -> ());
  match
    Arb_service.Server.start
      ~config:
        {
          Arb_service.Server.default_config with
          host;
          port;
          workers = http_workers;
          max_pending = max_queue;
          request_timeout_s = timeout;
          metrics = Some reg;
        }
      ~handler:(Arb_service.Api.handler api) ()
  with
  | exception Unix.Unix_error (e, _, _) ->
      Arb_service.Api.join api;
      Printf.eprintf "cannot listen on %s:%d: %s\n" host port
        (Unix.error_message e);
      1
  | server ->
      Printf.eprintf "listening on %s:%d (POST /v1/stop or Ctrl-C to stop)\n%!"
        host
        (Arb_service.Server.port server);
      (* The wall-clock ticker drives the continual engine; chunked sleeps
         keep shutdown latency bounded by 0.1 s, not by the interval. *)
      let stop_tick = Atomic.make false in
      let ticker =
        if epoch_interval > 0.0 then
          Some
            (Domain.spawn (fun () ->
                 let rec loop () =
                   let slept = ref 0.0 in
                   while
                     (not (Atomic.get stop_tick)) && !slept < epoch_interval
                   do
                     Unix.sleepf 0.1;
                     slept := !slept +. 0.1
                   done;
                   if not (Atomic.get stop_tick) then begin
                     ignore (Arb_continual.Engine.tick ?tracer ~workers engine);
                     loop ()
                   end
                 in
                 loop ()))
        else None
      in
      (* The handler only flips an atomic: taking the API mutex inside a
         signal handler could self-deadlock, so the main loop polls. *)
      let sigint = Atomic.make false in
      let previous =
        try
          Some
            (Sys.signal Sys.sigint
               (Sys.Signal_handle (fun _ -> Atomic.set sigint true)))
        with Invalid_argument _ | Sys_error _ -> None
      in
      while
        (not (Atomic.get sigint)) && not (Arb_service.Api.stop_requested api)
      do
        Unix.sleepf 0.2
      done;
      (match previous with
      | Some h -> ( try Sys.set_signal Sys.sigint h with _ -> ())
      | None -> ());
      Atomic.set stop_tick true;
      Option.iter Domain.join ticker;
      Arb_service.Server.stop server;
      Arb_service.Api.join api;
      let st = Arb_service.Server.stats server in
      Printf.eprintf
        "http: %d connections, %d requests, %d rejected busy, %d bad, %d \
         timeouts, %d disconnects\n%!"
        st.Arb_service.Server.accepted st.Arb_service.Server.served
        st.Arb_service.Server.rejected_busy st.Arb_service.Server.bad_requests
        st.Arb_service.Server.timeouts
        st.Arb_service.Server.client_disconnects;
      live_fp := Arb_service.Service.calibration_fingerprint service;
      serve_summary ~engine service (Arb_service.Service.history service) ~json
        reg;
      if (not json) && Arb_continual.Engine.sessions engine <> [] then
        print_sessions_text engine;
      0

let serve_cmd =
  let run verbose workload_path devices seed workers cache_dir json
      calibration snapshots trace_out metrics_out det listen host max_queue
      http_workers timeout epochs epoch_interval =
    setup_logs verbose;
    (* serve always keeps a registry so every exit path can report a
       metrics summary; --metrics-out additionally persists it. *)
    let reg = Arb_obs.Metrics.create () in
    let tracer =
      obs_tracer ~clock:Arb_obs.Clock.Monotonic ~trace_out ~deterministic:det
    in
    let calib = load_calibration calibration in
    (* The exit line must report whatever calibration ended up active —
       a PUT /v1/calibration mid-serve supersedes the one loaded here. *)
    let live_fp = ref calib.Arb_planner.Calibration.fingerprint in
    let finish code =
      obs_save ~trace_out ~metrics_out tracer (Some reg);
      (match snapshots with
      | Some dir -> snapshot_append ~dir ~tag:"serve" reg
      | None -> ());
      (* The final metrics summary line (also emitted on workload-file
         errors above); stderr, so --json stdout stays parseable. *)
      Printf.eprintf "metrics: %d series%s; calibration %s\n%!"
        (metrics_series reg)
        (match metrics_out with
        | Some path -> " written to " ^ path
        | None -> "")
        !live_fp;
      code
    in
    let workload =
      match workload_path with
      | None -> Ok None
      | Some path -> (
          match Arb_service.Workload.load path with
          | Ok w -> Ok (Some w)
          | Error m -> Error m)
    in
    match (workload, listen) with
    | Error m, _ ->
        Printf.eprintf "cannot load workload: %s\n" m;
        Arb_obs.Metrics.add reg
          ~help:"Workload files that failed to load or parse"
          "arb_service_workload_errors_total" 1.0;
        ignore (finish 1);
        1
    | Ok None, None ->
        Printf.eprintf "nothing to do: pass --workload FILE, --listen PORT, \
                        or both\n";
        1
    | Ok workload, Some port ->
        finish
          (serve_listen ~host ~port ~max_queue ~http_workers ~workers ~timeout
             ~epoch_interval ~workload ~devices ~seed ~cache_dir ~calib
             ~snapshots ~live_fp ~json ~tracer reg)
    | Ok (Some workload), None ->
        let budget =
          match workload.Arb_service.Workload.budget with
          | Some b -> b
          | None -> Arb_dp.Budget.create ~epsilon:10.0 ~delta:1e-6
        in
        let devices =
          match devices with
          | Some d -> d
          | None -> Option.value workload.Arb_service.Workload.devices ~default:64
        in
        let seed =
          match seed with
          | Some s -> s
          | None -> Option.value workload.Arb_service.Workload.seed ~default:7
        in
        let cache = Arb_service.Cache.create ?dir:cache_dir () in
        let service =
          Arb_service.Service.create ~cache ~metrics:reg ~calibration:calib
            ?snapshots:(Option.map (fun d -> (d, "serve")) snapshots)
            ~budget ~devices ~seed ()
        in
        let records =
          Arb_service.Service.run_workload ?tracer ~workers service workload
        in
        (match Arb_service.Workload.recurring workload with
        | [] -> serve_summary service records ~json reg
        | recurring ->
            (* One-shots ran above; recurring entries become sessions and
               the engine drives the requested number of epochs. *)
            let engine = Arb_continual.Engine.create ~service () in
            Arb_continual.Engine.set_calibration engine
              calib.Arb_planner.Calibration.fingerprint;
            List.iter
              (fun sub ->
                match
                  Arb_continual.Engine.register engine ~carry_state:true sub
                with
                | Ok _ -> ()
                | Error m -> Printf.eprintf "cannot register session: %s\n" m)
              recurring;
            let n_epochs =
              match epochs with
              | Some n -> n
              | None ->
                  Option.value workload.Arb_service.Workload.epochs ~default:5
            in
            ignore
              (Arb_continual.Engine.run_epochs ?tracer ~workers engine
                 n_epochs);
            serve_summary ~engine service
              (Arb_service.Service.history service)
              ~json reg;
            if not json then print_sessions_text engine);
        finish 0
  in
  let workload_arg =
    let doc = "Workload file (JSON; see DESIGN.md \xC2\xA78). Optional with \
               --listen (queries then arrive over HTTP); required otherwise." in
    Arg.(
      value
      & opt (some file) None
      & info [ "workload"; "w" ] ~docv:"FILE" ~doc)
  in
  let listen_arg =
    let doc =
      "Serve the JSON API over HTTP on this port (0 picks a free one) \
       instead of exiting after the workload file: POST /v1/queries to \
       submit, GET /v1/queries/IDX to poll, POST /v1/stop (or Ctrl-C) for a \
       graceful drain-then-summary shutdown."
    in
    Arg.(value & opt (some int) None & info [ "listen" ] ~docv:"PORT" ~doc)
  in
  let host_arg =
    let doc = "Bind address for --listen." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)
  in
  let max_queue_arg =
    let doc =
      "Backpressure bound: both the accepted-connection queue and the \
       submission queue refuse (HTTP 429 / 503, budget untouched) beyond \
       this depth."
    in
    Arg.(value & opt int 1024 & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let http_workers_arg =
    let doc = "HTTP worker domains (connection handlers)." in
    Arg.(value & opt int 4 & info [ "http-workers" ] ~docv:"K" ~doc)
  in
  let timeout_arg =
    let doc =
      "Whole-request deadline in seconds (slowloris guard): all bytes of a \
       request must arrive within this window."
    in
    Arg.(value & opt float 10.0 & info [ "request-timeout" ] ~docv:"S" ~doc)
  in
  let devices_opt =
    let doc = "Device population size (overrides the workload file)." in
    Arg.(value & opt (some int) None & info [ "devices"; "d" ] ~docv:"D" ~doc)
  in
  let seed_opt =
    let doc = "Service seed (overrides the workload file)." in
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let workers_arg =
    let doc = "Planner worker domains." in
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"K" ~doc)
  in
  let cache_dir_arg =
    let doc = "Persist the plan cache in this directory." in
    Arg.(
      value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let json_arg =
    let doc = "Emit lifecycle records and counters as JSON." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let epochs_arg =
    let doc =
      "With a workload file holding recurring entries (\"every\"/\"window\"): \
       drive this many epochs before the summary (default: the workload's \
       \"epochs\" field, else 5)."
    in
    Arg.(value & opt (some int) None & info [ "epochs" ] ~docv:"N" ~doc)
  in
  let epoch_interval_arg =
    let doc =
      "With --listen: advance the continual engine one epoch every $(docv) \
       seconds. 0 (the default) disables the wall-clock ticker; epochs are \
       then driven by POST /v1/epoch."
    in
    Arg.(value & opt float 0.0 & info [ "epoch-interval" ] ~docv:"S" ~doc)
  in
  let term =
    Term.(
      const run $ verbose_arg $ workload_arg $ devices_opt $ seed_opt
      $ workers_arg $ cache_dir_arg $ json_arg $ calibration_arg
      $ snapshots_arg $ trace_out_arg $ metrics_out_arg $ trace_det_arg
      $ listen_arg $ host_arg $ max_queue_arg $ http_workers_arg
      $ timeout_arg $ epochs_arg $ epoch_interval_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a workload of queries through the multi-tenant service \
          (admission control against the shared privacy budget, cached and \
          concurrent planning, serialized execution on the certificate \
          chain) — from a workload file, over HTTP with --listen, or both.")
    term

let calibrate_cmd =
  let module C = Arb_planner.Calibration in
  let run verbose from out =
    setup_logs verbose;
    match C.fit_snapshots ~dir:from () with
    | Error m ->
        Printf.eprintf "cannot fit: %s\n" m;
        1
    | Ok calib ->
        C.save out calib;
        let p = calib.C.provenance in
        Printf.printf "calibration %s written to %s\n" calib.C.fingerprint out;
        Printf.printf "  %d run(s)%s; mean relative error %.4f -> %.4f\n"
          p.C.p_runs
          (if p.C.p_skipped > 0 then
             Printf.sprintf " (%d malformed snapshot line(s) skipped)"
               p.C.p_skipped
           else "")
          p.C.p_err_before p.C.p_err_after;
        List.iter
          (fun s ->
            Printf.printf "  %-14s x%-10.4f %4d sample(s)  %.4f -> %.4f\n"
              s.C.s_section s.C.s_scale s.C.s_samples s.C.s_err_before
              s.C.s_err_after)
          p.C.p_sections;
        0
  in
  let from_arg =
    let doc =
      "Snapshot-store directory to fit from (accumulated by `arb run \
       --snapshots` / `arb serve --snapshots`)."
    in
    Arg.(required & opt (some string) None & info [ "from" ] ~docv:"DIR" ~doc)
  in
  let out_arg =
    let doc = "Where to write the fitted calibration file." in
    Arg.(value & opt string "calib.json" & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:
         "Fit cost-model constants from a snapshot store of observed \
          predicted-vs-measured residuals, writing a versioned calibration \
          file for --calibration / PUT /v1/calibration.")
    Term.(const run $ verbose_arg $ from_arg $ out_arg)

let sessions_cmd =
  let module J = Arb_util.Json in
  let summary_line s =
    let str name = J.to_str (J.member name s) in
    let int name = J.to_int (J.member name s) in
    Printf.printf
      "%-12s query %-9s every %d  runs %d (%d cold, %d replanned, %d \
       revalidated)  refusals %d%s\n"
      (str "name") (str "query") (int "every") (int "runs") (int "coldPlans")
      (int "replans") (int "revalidations")
      (int "windowRefusals")
      (match J.to_list (J.member "estimate" s) with
      | [] -> ""
      | e -> "  estimate " ^ String.concat "; " (List.map J.to_str e)
      | exception J.Parse_error _ -> "")
  in
  let print_index j =
    Printf.printf "epoch %d\n" (J.to_int (J.member "epoch" j));
    List.iter summary_line (J.to_list (J.member "sessions" j))
  in
  let print_detail j =
    summary_line j;
    let history = try J.to_list (J.member "history" j) with J.Parse_error _ -> [] in
    List.iter (fun r -> Printf.printf "  %s\n" (J.to_string r)) history
  in
  let run host port name json =
    let target =
      match name with None -> "/v1/sessions" | Some n -> "/v1/sessions/" ^ n
    in
    match Arb_service.Client.get ~host ~port target with
    | Error m ->
        Printf.eprintf "cannot reach %s:%d: %s\n" host port m;
        1
    | Ok resp when resp.Arb_service.Http.status <> 200 ->
        Printf.eprintf "%d %s: %s\n" resp.Arb_service.Http.status
          resp.Arb_service.Http.reason resp.Arb_service.Http.resp_body;
        1
    | Ok resp -> (
        if json then begin
          print_endline resp.Arb_service.Http.resp_body;
          0
        end
        else
          match J.of_string resp.Arb_service.Http.resp_body with
          | exception J.Parse_error m ->
              Printf.eprintf "malformed response: %s\n" m;
              1
          | j ->
              (match name with None -> print_index j | Some _ -> print_detail j);
              0)
  in
  let host_arg =
    let doc = "Host of a running `arb serve --listen`." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR" ~doc)
  in
  let port_arg =
    let doc = "Port of a running `arb serve --listen`." in
    Arg.(required & opt (some int) None & info [ "port"; "p" ] ~docv:"PORT" ~doc)
  in
  let session_arg =
    let doc = "Show one session's summary and full epoch history." in
    Arg.(value & opt (some string) None & info [ "session"; "s" ] ~docv:"NAME" ~doc)
  in
  let json_arg =
    let doc = "Print the server's JSON verbatim." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  Cmd.v
    (Cmd.info "sessions"
       ~doc:
         "Inspect the continual sessions of a running service: per-session \
          run/re-plan/re-validation counters, sliding budget windows, \
          carried-state estimates, and (with --session) epoch history.")
    Term.(const run $ host_arg $ port_arg $ session_arg $ json_arg)

let main =
  let info =
    Cmd.info "arb" ~version:"1.0.0"
      ~doc:"Arboretum: a planner for large-scale federated analytics with differential privacy"
  in
  Cmd.group info
    [ plan_cmd; certify_cmd; run_cmd; verify_cmd; serve_cmd; calibrate_cmd;
      sessions_cmd; list_cmd ]

let () = exit (Cmd.eval' main)
