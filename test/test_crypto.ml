(* Tests for the cryptographic substrate: SHA-256, Merkle, signatures,
   field/NTT algebra, BGV, Shamir/VSR, ZKPs, sortition. *)

module C = Arb_crypto
module Rng = Arb_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let qtest = QCheck_alcotest.to_alcotest

(* ---------------- SHA-256 ---------------- *)

let test_sha_vectors () =
  let cases =
    [
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ]
  in
  List.iter
    (fun (msg, want) -> checks msg want (C.Sha256.to_hex (C.Sha256.digest msg)))
    cases

let test_sha_million_a () =
  checks "10^6 x 'a'" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (C.Sha256.to_hex (C.Sha256.digest (String.make 1_000_000 'a')))

let test_sha_incremental () =
  (* Feeding in arbitrary chunks must agree with one-shot hashing. *)
  let msg = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let whole = C.Sha256.digest msg in
  List.iter
    (fun chunk ->
      let ctx = C.Sha256.init () in
      let rec feed pos =
        if pos < String.length msg then begin
          let len = min chunk (String.length msg - pos) in
          C.Sha256.feed ctx (String.sub msg pos len);
          feed (pos + len)
        end
      in
      feed 0;
      checks (Printf.sprintf "chunk %d" chunk) (C.Sha256.to_hex whole)
        (C.Sha256.to_hex (C.Sha256.finalize ctx)))
    [ 1; 3; 55; 56; 63; 64; 65; 128; 999 ]

let test_hmac_vectors () =
  (* RFC 4231 test cases 1 and 2. *)
  checks "rfc4231 case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (C.Sha256.to_hex (C.Sha256.hmac ~key:"Jefe" "what do ya want for nothing?"));
  checks "rfc4231 case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (C.Sha256.to_hex (C.Sha256.hmac ~key:(String.make 20 '\x0b') "Hi There"))

let prop_sha_deterministic_and_sensitive =
  QCheck.Test.make ~name:"sha256 deterministic + bit-sensitive" ~count:100
    QCheck.(string_of_size (Gen.int_range 1 200))
    (fun s ->
      let d1 = C.Sha256.digest s and d2 = C.Sha256.digest s in
      let flipped =
        let b = Bytes.of_string s in
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
        Bytes.to_string b
      in
      String.equal d1 d2 && not (String.equal d1 (C.Sha256.digest flipped)))

(* ---------------- Merkle ---------------- *)

let prop_merkle_inclusion =
  QCheck.Test.make ~name:"merkle inclusion proofs verify" ~count:100
    QCheck.(int_range 1 64)
    (fun n ->
      let leaves = Array.init n (fun i -> Printf.sprintf "leaf-%d" i) in
      let t = C.Merkle.build leaves in
      let root = C.Merkle.root t in
      List.for_all
        (fun i -> C.Merkle.verify ~root ~leaf:leaves.(i) (C.Merkle.prove t i))
        (List.init n Fun.id))

let test_merkle_tamper () =
  let leaves = Array.init 8 (fun i -> Printf.sprintf "v%d" i) in
  let t = C.Merkle.build leaves in
  let root = C.Merkle.root t in
  let proof = C.Merkle.prove t 3 in
  checkb "wrong leaf fails" false (C.Merkle.verify ~root ~leaf:"v4" proof);
  checkb "wrong index fails" false
    (C.Merkle.verify ~root ~leaf:"v3" { proof with C.Merkle.index = 4 });
  checkb "tampered root fails" false
    (C.Merkle.verify ~root:(C.Sha256.digest "x") ~leaf:"v3" proof)

let test_merkle_second_preimage_separation () =
  (* Domain separation: a tree over the concatenated leaf hashes differs
     from the two-leaf tree. *)
  let t1 = C.Merkle.build [| "a"; "b" |] in
  let inner = C.Merkle.leaf_hash "a" ^ C.Merkle.leaf_hash "b" in
  let t2 = C.Merkle.build [| inner |] in
  checkb "no splice" false (String.equal (C.Merkle.root t1) (C.Merkle.root t2))

let test_merkle_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Merkle.build: no leaves")
    (fun () -> ignore (C.Merkle.build [||]))

(* ---------------- Lamport signatures ---------------- *)

let test_sig_roundtrip () =
  let kp = C.Sig_scheme.keygen ~seed:"device-1|q7" in
  let s = C.Sig_scheme.sign ~secret:kp.C.Sig_scheme.secret "hello" in
  checkb "verifies" true
    (C.Sig_scheme.verify ~public:kp.C.Sig_scheme.public ~msg:"hello" ~signature:s);
  checkb "wrong message fails" false
    (C.Sig_scheme.verify ~public:kp.C.Sig_scheme.public ~msg:"hullo" ~signature:s);
  let kp2 = C.Sig_scheme.keygen ~seed:"device-2|q7" in
  checkb "wrong key fails" false
    (C.Sig_scheme.verify ~public:kp2.C.Sig_scheme.public ~msg:"hello" ~signature:s)

let test_sig_deterministic () =
  let kp = C.Sig_scheme.keygen ~seed:"d" in
  checks "same signature"
    (C.Sha256.to_hex
       (C.Sha256.digest (C.Sig_scheme.sign ~secret:kp.C.Sig_scheme.secret "m")))
    (C.Sha256.to_hex
       (C.Sha256.digest (C.Sig_scheme.sign ~secret:kp.C.Sig_scheme.secret "m")))

let test_sig_tamper () =
  let kp = C.Sig_scheme.keygen ~seed:"d2" in
  let s = C.Sig_scheme.sign ~secret:kp.C.Sig_scheme.secret "m" in
  let tampered =
    let b = Bytes.of_string s in
    Bytes.set b 10 (Char.chr (Char.code (Bytes.get b 10) lxor 0xFF));
    Bytes.to_string b
  in
  checkb "tampered signature fails" false
    (C.Sig_scheme.verify ~public:kp.C.Sig_scheme.public ~msg:"m" ~signature:tampered)

(* ---------------- Field ---------------- *)

let p_test = 998244353
let fld = C.Field.create p_test

let prop_field_ring_laws =
  QCheck.Test.make ~name:"field ring laws" ~count:300
    QCheck.(
      triple (int_bound (p_test - 1)) (int_bound (p_test - 1)) (int_bound (p_test - 1)))
    (fun (a, b, c) ->
      let open C.Field in
      add fld a b = add fld b a
      && mul fld a b = mul fld b a
      && mul fld a (add fld b c) = add fld (mul fld a b) (mul fld a c)
      && add fld a (neg fld a) = 0)

let prop_field_inverse =
  QCheck.Test.make ~name:"field inverse" ~count:200
    QCheck.(int_range 1 (p_test - 1))
    (fun a -> C.Field.mul fld a (C.Field.inv fld a) = 1)

let test_field_is_prime () =
  List.iter
    (fun p -> checkb (string_of_int p) true (C.Field.is_prime p))
    [ 2; 3; 12289; 65537; 786433; 998244353; 754974721 ];
  List.iter
    (fun p -> checkb (string_of_int p) false (C.Field.is_prime p))
    [ 1; 0; 4; 12287; 65536; 998244351 ]

let test_field_root_of_unity () =
  let w = C.Field.root_of_unity fld ~order:1024 in
  checki "w^1024 = 1" 1 (C.Field.pow fld w 1024);
  checkb "w^512 <> 1" true (C.Field.pow fld w 512 <> 1)

let test_field_center () =
  checki "center small" 5 (C.Field.center fld 5);
  checki "center large is negative" (-1) (C.Field.center fld (p_test - 1))

let test_field_rejects () =
  Alcotest.check_raises "composite"
    (Invalid_argument "Field.create: modulus not prime") (fun () ->
      ignore (C.Field.create 12287));
  Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
      ignore (C.Field.inv fld 0))

(* ---------------- NTT / Poly ---------------- *)

let prop_ntt_roundtrip =
  QCheck.Test.make ~name:"NTT roundtrip" ~count:50
    QCheck.(int_range 0 5)
    (fun logn_off ->
      let n = 8 lsl logn_off in
      let plan = C.Ntt.plan ~n ~p:p_test in
      let rng = Rng.create (Int64.of_int n) in
      let a = C.Poly.random_uniform fld rng n in
      let a' = Array.copy a in
      C.Ntt.forward plan a';
      C.Ntt.inverse plan a';
      a = a')

let prop_ntt_vs_naive =
  QCheck.Test.make ~name:"NTT multiply = naive negacyclic multiply" ~count:50
    QCheck.(int_range 0 4)
    (fun logn_off ->
      let n = 8 lsl logn_off in
      let plan = C.Ntt.plan ~n ~p:p_test in
      let rng = Rng.create (Int64.of_int (n + 1)) in
      let a = C.Poly.random_uniform fld rng n in
      let b = C.Poly.random_uniform fld rng n in
      C.Ntt.multiply plan a b = C.Poly.mul_naive fld a b)

let test_ntt_negacyclic_wraparound () =
  (* x^(n-1) * x = -1 in Z_p[x]/(x^n+1). *)
  let n = 16 in
  let plan = C.Ntt.plan ~n ~p:p_test in
  let xn1 = Array.make n 0 and x = Array.make n 0 in
  xn1.(n - 1) <- 1;
  x.(1) <- 1;
  let prod = C.Ntt.multiply plan xn1 x in
  checki "constant coeff = -1" (p_test - 1) prod.(0);
  for i = 1 to n - 1 do
    checki "other coeffs zero" 0 prod.(i)
  done

let test_ntt_rejects () =
  Alcotest.check_raises "n not power of two"
    (Invalid_argument "Ntt.plan: n not a power of two") (fun () ->
      ignore (C.Ntt.plan ~n:12 ~p:p_test));
  (* 2013265921 = 15*2^27 + 1 is a classic NTT prime but sits above 2^30,
     so the lazy butterflies' 4p(p-1) headroom would overflow. *)
  Alcotest.check_raises "p above lazy-reduction headroom"
    (Invalid_argument "Ntt.plan: p > 2^30 breaks lazy-reduction headroom")
    (fun () -> ignore (C.Ntt.plan ~n:64 ~p:2013265921));
  Alcotest.check_raises "(p-1)^2 overflows"
    (Invalid_argument "Ntt.plan: (p-1)^2 overflows 62 bits") (fun () ->
      ignore (C.Ntt.plan ~n:64 ~p:((1 lsl 31) + 1)))

(* ---- Differential properties: the Barrett / lazy-reduction kernels must
   be bit-identical to the seed's `mod`-based arithmetic. ---- *)

(* Every RNS prime and plaintext modulus the BGV parameter presets use,
   deduplicated. All are NTT-friendly for the ring sizes below. *)
let bgv_rns_primes =
  let moduli (params : C.Bgv.params) = params.C.Bgv.t :: params.C.Bgv.q_primes in
  List.sort_uniq compare
    (moduli (C.Bgv.ahe_params ~n:128 ()) @ moduli (C.Bgv.fhe_params ~n:128 ()))

let barrett_fields =
  (* The RNS set plus a tiny prime and the largest 31-bit prime, to probe
     the float-reciprocal quotient estimate at both ends of the range. *)
  List.map C.Field.create (12289 :: ((1 lsl 31) - 1) :: bgv_rns_primes)

let prop_field_barrett_vs_mod =
  QCheck.Test.make ~name:"Field Barrett mul/add bit-identical to mod" ~count:300
    QCheck.(pair (int_bound ((1 lsl 31) - 2)) (int_bound ((1 lsl 31) - 2)))
    (fun (x, y) ->
      List.for_all
        (fun f ->
          let p = f.C.Field.p in
          let a = x mod p and b = y mod p in
          C.Field.mul f a b = a * b mod p && C.Field.add f a b = (a + b) mod p)
        barrett_fields)

let prop_ntt_lazy_vs_reference =
  QCheck.Test.make
    ~name:"lazy NTT bit-identical to reference (both butterfly directions)"
    ~count:25
    QCheck.(pair (int_range 0 4) (int_range 0 1000))
    (fun (logn_off, salt) ->
      let n = 8 lsl logn_off in
      List.for_all
        (fun p ->
          let plan = C.Ntt.plan ~n ~p in
          let f = C.Field.create p in
          let rng = Rng.create (Int64.of_int ((n * 7919) + salt)) in
          let a = C.Poly.random_uniform f rng n in
          let fwd_lazy = Array.copy a and fwd_ref = Array.copy a in
          C.Ntt.forward plan fwd_lazy;
          C.Ntt.forward_reference plan fwd_ref;
          let inv_lazy = Array.copy fwd_lazy and inv_ref = Array.copy fwd_ref in
          C.Ntt.inverse plan inv_lazy;
          C.Ntt.inverse_reference plan inv_ref;
          C.Poly.equal fwd_lazy fwd_ref
          && C.Poly.equal inv_lazy inv_ref
          && C.Poly.equal inv_lazy a)
        bgv_rns_primes)

let prop_ntt_multiply_vs_naive_all_rns =
  QCheck.Test.make ~name:"NTT multiply = naive for every RNS prime" ~count:15
    QCheck.(pair (int_range 0 3) (int_range 0 1000))
    (fun (logn_off, salt) ->
      let n = 8 lsl logn_off in
      List.for_all
        (fun p ->
          let plan = C.Ntt.plan ~n ~p in
          let f = C.Field.create p in
          let rng = Rng.create (Int64.of_int ((n * 31) + salt + 1)) in
          let a = C.Poly.random_uniform f rng n in
          let b = C.Poly.random_uniform f rng n in
          let fast = C.Ntt.multiply plan a b in
          C.Poly.equal fast (C.Poly.mul_naive f a b)
          && C.Poly.equal fast (C.Ntt.multiply_reference plan a b))
        bgv_rns_primes)

let prop_poly_into_matches_allocating =
  QCheck.Test.make ~name:"Poly in-place ops match allocating ops" ~count:50
    QCheck.(int_range 1 64)
    (fun n ->
      let rng = Rng.create (Int64.of_int (n + 77)) in
      let a = C.Poly.random_uniform fld rng n in
      let b = C.Poly.random_uniform fld rng n in
      let dst = Array.make n 0 in
      C.Poly.add_into fld ~dst a b;
      let ok_add = C.Poly.equal dst (C.Poly.add fld a b) in
      C.Poly.sub_into fld ~dst a b;
      let ok_sub = C.Poly.equal dst (C.Poly.sub fld a b) in
      C.Poly.neg_into fld ~dst a;
      let ok_neg = C.Poly.equal dst (C.Poly.neg fld a) in
      C.Poly.scale_into fld ~dst 7 a;
      let ok_scale = C.Poly.equal dst (C.Poly.scale fld 7 a) in
      ok_add && ok_sub && ok_neg && ok_scale)

(* ---------------- BGV ---------------- *)

let test_bgv_roundtrip () =
  let rng = Rng.create 101L in
  List.iter
    (fun params ->
      let sk, pk = C.Bgv.keygen params rng in
      let slots = Array.init 64 (fun i -> i * 7 mod params.C.Bgv.t) in
      let ct = C.Bgv.encrypt pk rng slots in
      let dec = C.Bgv.decrypt sk ct in
      Array.iteri (fun i v -> checki (Printf.sprintf "slot %d" i) v dec.(i)) slots)
    [ C.Bgv.ahe_params ~n:128 (); C.Bgv.fhe_params ~n:128 () ]

let test_bgv_homomorphic_add () =
  let rng = Rng.create 102L in
  let params = C.Bgv.ahe_params ~n:128 () in
  let sk, pk = C.Bgv.keygen params rng in
  let a = Array.init 128 (fun i -> i) and b = Array.init 128 (fun i -> 2 * i) in
  let ct = C.Bgv.add (C.Bgv.encrypt pk rng a) (C.Bgv.encrypt pk rng b) in
  let dec = C.Bgv.decrypt sk ct in
  for i = 0 to 127 do
    checki "sum slot" (3 * i) dec.(i)
  done;
  let ct2 = C.Bgv.sub (C.Bgv.encrypt pk rng b) (C.Bgv.encrypt pk rng a) in
  let dec2 = C.Bgv.decrypt sk ct2 in
  for i = 0 to 127 do
    checki "diff slot" i dec2.(i)
  done

let test_bgv_long_sum () =
  (* The aggregator's workload: hundreds of additions of one-hot rows. *)
  let rng = Rng.create 103L in
  let params = C.Bgv.ahe_params ~n:128 () in
  let sk, pk = C.Bgv.keygen params rng in
  let acc = ref (C.Bgv.encrypt pk rng (Array.make 128 0)) in
  let expected = Array.make 128 0 in
  for _ = 1 to 300 do
    let cat = Rng.int rng 128 in
    let row = Array.make 128 0 in
    row.(cat) <- 1;
    expected.(cat) <- expected.(cat) + 1;
    acc := C.Bgv.add !acc (C.Bgv.encrypt pk rng row)
  done;
  (* The analytic noise model is conservative; at this tiny ring it sits
     near zero while actual decryption still has ample headroom. *)
  checkb "noise budget not absurdly negative" true
    (C.Bgv.noise_budget_bits !acc > -10.0);
  Alcotest.check Alcotest.(array int) "histogram" expected (C.Bgv.decrypt sk !acc)

let test_bgv_mul_plain () =
  let rng = Rng.create 104L in
  let params = C.Bgv.fhe_params ~n:128 () in
  let sk, pk = C.Bgv.keygen params rng in
  let a = Array.init 128 (fun i -> i + 1) in
  let mask = Array.init 128 (fun i -> i mod 2) in
  let dec = C.Bgv.decrypt sk (C.Bgv.mul_plain (C.Bgv.encrypt pk rng a) mask) in
  for i = 0 to 127 do
    checki "masked slot" ((i + 1) * (i mod 2) mod params.C.Bgv.t) dec.(i)
  done

let test_bgv_mul_and_relin () =
  let rng = Rng.create 105L in
  let params = C.Bgv.fhe_params ~n:128 () in
  let sk, pk = C.Bgv.keygen params rng in
  let a = Array.init 128 (fun i -> i) and b = Array.init 128 (fun i -> i + 2) in
  let prod = C.Bgv.mul (C.Bgv.encrypt pk rng a) (C.Bgv.encrypt pk rng b) in
  checki "degree 2 before relin" 2 (C.Bgv.ciphertext_degree prod);
  let want = Array.init 128 (fun i -> i * (i + 2) mod params.C.Bgv.t) in
  Alcotest.check Alcotest.(array int) "degree-2 decrypt" want (C.Bgv.decrypt sk prod);
  let rk = C.Bgv.relin_keygen params rng sk in
  let lin = C.Bgv.relinearize rk prod in
  checki "degree 1 after relin" 1 (C.Bgv.ciphertext_degree lin);
  Alcotest.check Alcotest.(array int) "relinearized decrypt" want (C.Bgv.decrypt sk lin)

let test_bgv_threshold () =
  let rng = Rng.create 106L in
  let params = C.Bgv.ahe_params ~n:128 () in
  let sk, pk = C.Bgv.keygen params rng in
  let slots = Array.init 128 (fun i -> i * 3 mod params.C.Bgv.t) in
  let ct = C.Bgv.encrypt pk rng slots in
  List.iter
    (fun parties ->
      let shares = C.Bgv.share_secret_key params rng sk ~parties in
      let partials =
        Array.to_list
          (Array.map (fun sh -> C.Bgv.partial_decrypt params rng sh ct) shares)
      in
      Alcotest.check
        Alcotest.(array int)
        (Printf.sprintf "threshold %d parties" parties)
        slots
        (C.Bgv.combine_partials params ct partials))
    [ 2; 5; 11 ]

let test_bgv_threshold_missing_share_garbage () =
  (* Dropping one additive share must NOT reconstruct the plaintext. *)
  let rng = Rng.create 107L in
  let params = C.Bgv.ahe_params ~n:128 () in
  let sk, pk = C.Bgv.keygen params rng in
  let slots = Array.init 128 (fun i -> i) in
  let ct = C.Bgv.encrypt pk rng slots in
  let shares = C.Bgv.share_secret_key params rng sk ~parties:5 in
  let partials =
    Array.to_list
      (Array.map
         (fun sh -> C.Bgv.partial_decrypt params rng sh ct)
         (Array.sub shares 0 4))
  in
  let out = C.Bgv.combine_partials params ct partials in
  checkb "incomplete shares give garbage" true (out <> slots)

let test_bgv_sk_encryption () =
  let rng = Rng.create 108L in
  let params = C.Bgv.fhe_params ~n:128 () in
  let sk, _pk = C.Bgv.keygen params rng in
  let slots = Array.init 128 (fun i -> i mod 97) in
  Alcotest.check
    Alcotest.(array int)
    "symmetric roundtrip" slots
    (C.Bgv.decrypt sk (C.Bgv.encrypt_with_sk sk rng slots))

let test_bgv_param_validation () =
  let bad n q t =
    try
      C.Bgv.validate { C.Bgv.n; q_primes = q; t; sigma = 3.2 };
      false
    with Invalid_argument _ -> true
  in
  checkb "n not pow2" true (bad 100 [ 998244353 ] 12289);
  checkb "q not ntt friendly" true (bad 256 [ 7 ] 12289);
  checkb "t not 1 mod 2n" true (bad 4096 [ 998244353 ] 12289);
  checkb "too many primes" true (bad 256 [ 998244353; 754974721; 998244353 ] 12289)

let test_bgv_find_plaintext_modulus () =
  let t = C.Bgv.find_plaintext_modulus ~n:1024 ~min_t:5000 in
  checkb "prime" true (C.Field.is_prime t);
  checki "1 mod 2n" 1 (t mod 2048);
  checkb ">= min" true (t >= 5000)

let prop_bgv_add_matches_plaintext =
  QCheck.Test.make ~name:"BGV addition homomorphism (random)" ~count:20
    QCheck.(
      pair
        (list_of_size (Gen.return 32) (int_bound 100))
        (list_of_size (Gen.return 32) (int_bound 100)))
    (fun (a, b) ->
      let rng = Rng.create 109L in
      let params = C.Bgv.ahe_params ~n:64 () in
      let sk, pk = C.Bgv.keygen params rng in
      let a = Array.of_list a and b = Array.of_list b in
      let dec =
        C.Bgv.decrypt sk (C.Bgv.add (C.Bgv.encrypt pk rng a) (C.Bgv.encrypt pk rng b))
      in
      Array.for_all2 ( = ) (Array.map2 ( + ) a b) (Array.sub dec 0 32))

let prop_bgv_mul_matches_plaintext =
  QCheck.Test.make ~name:"BGV multiplication homomorphism (random)" ~count:10
    QCheck.(
      pair
        (list_of_size (Gen.return 32) (int_bound 100))
        (list_of_size (Gen.return 32) (int_bound 100)))
    (fun (a, b) ->
      let rng = Rng.create 111L in
      let params = C.Bgv.fhe_params ~n:64 () in
      let sk, pk = C.Bgv.keygen params rng in
      let rk = C.Bgv.relin_keygen params rng sk in
      let a = Array.of_list a and b = Array.of_list b in
      let prod = C.Bgv.mul (C.Bgv.encrypt pk rng a) (C.Bgv.encrypt pk rng b) in
      let dec = C.Bgv.decrypt sk (C.Bgv.relinearize rk prod) in
      Array.for_all2 ( = )
        (Array.map2 (fun x y -> x * y mod params.C.Bgv.t) a b)
        (Array.sub dec 0 32))

let prop_bgv_mul_then_add_matches_plaintext =
  (* The aggregator's FHE workload shape: a masked product accumulated with
     a fresh encryption. decrypt(relin(enc a * enc b) + enc c) = a*b + c. *)
  QCheck.Test.make ~name:"BGV mul-then-add homomorphism (random)" ~count:10
    QCheck.(
      triple
        (list_of_size (Gen.return 16) (int_bound 50))
        (list_of_size (Gen.return 16) (int_bound 50))
        (list_of_size (Gen.return 16) (int_bound 50)))
    (fun (a, b, c) ->
      let rng = Rng.create 112L in
      let params = C.Bgv.fhe_params ~n:64 () in
      let sk, pk = C.Bgv.keygen params rng in
      let rk = C.Bgv.relin_keygen params rng sk in
      let a = Array.of_list a and b = Array.of_list b and c = Array.of_list c in
      let prod =
        C.Bgv.relinearize rk
          (C.Bgv.mul (C.Bgv.encrypt pk rng a) (C.Bgv.encrypt pk rng b))
      in
      let dec = C.Bgv.decrypt sk (C.Bgv.add prod (C.Bgv.encrypt pk rng c)) in
      let want = Array.init 16 (fun i -> ((a.(i) * b.(i)) + c.(i)) mod params.C.Bgv.t) in
      Array.for_all2 ( = ) want (Array.sub dec 0 16))

let test_bgv_galois_permutes_slots () =
  let rng = Rng.create 110L in
  let p = C.Bgv.fhe_params ~n:64 () in
  let sk, pk = C.Bgv.keygen p rng in
  let slots = Array.init 64 (fun i -> i + 1) in
  let ct = C.Bgv.encrypt pk rng slots in
  let k = C.Bgv.rotation_generator p in
  let gk = C.Bgv.galois_keygen p rng sk ~k in
  let dec = C.Bgv.decrypt sk (C.Bgv.apply_galois gk ct) in
  let perm = C.Bgv.slot_rotation_of_galois p ~k in
  Array.iteri
    (fun i v -> checki (Printf.sprintf "slot %d moved" i) (v mod p.C.Bgv.t) dec.(perm.(i)))
    slots;
  (* The rotation group splits the slots into two cycles of length n/2 —
     the hypercube structure homomorphic scans ride on. *)
  let seen = Array.make 64 false in
  let cycles = ref 0 and lengths = ref [] in
  for i = 0 to 63 do
    if not seen.(i) then begin
      incr cycles;
      let len = ref 0 and j = ref i in
      while not seen.(!j) do
        seen.(!j) <- true;
        incr len;
        j := perm.(!j)
      done;
      lengths := !len :: !lengths
    end
  done;
  checki "two cycles" 2 !cycles;
  checkb "each of length n/2" true (List.for_all (( = ) 32) !lengths)

let test_bgv_rotate_and_add_row_sums () =
  (* Homomorphic running sums by rotate-and-add doubling: after log2(n/2)
     steps every slot holds the sum of its rotation row — the primitive the
     planner's heRotate scan instantiation is priced on. *)
  let rng = Rng.create 111L in
  let p = C.Bgv.fhe_params ~n:64 () in
  let sk, pk = C.Bgv.keygen p rng in
  let slots = Array.init 64 (fun i -> i + 1) in
  let base = C.Bgv.rotation_generator p in
  let perm1 = C.Bgv.slot_rotation_of_galois p ~k:base in
  (* Row membership from the base rotation's cycles. *)
  let row = Array.make 64 (-1) in
  let seen = Array.make 64 false in
  let next_row = ref 0 in
  for i = 0 to 63 do
    if not seen.(i) then begin
      let j = ref i in
      while not seen.(!j) do
        seen.(!j) <- true;
        row.(!j) <- !next_row;
        j := perm1.(!j)
      done;
      incr next_row
    end
  done;
  let row_sum r =
    let acc = ref 0 in
    Array.iteri (fun i v -> if row.(i) = r then acc := !acc + v) slots;
    !acc mod p.C.Bgv.t
  in
  let ct = ref (C.Bgv.encrypt pk rng slots) in
  let k = ref base in
  for _ = 1 to 5 (* log2 32 *) do
    let gk = C.Bgv.galois_keygen p rng sk ~k:!k in
    ct := C.Bgv.add !ct (C.Bgv.apply_galois gk !ct);
    k := !k * !k mod (2 * 64)
  done;
  let dec = C.Bgv.decrypt sk !ct in
  Array.iteri
    (fun i r -> checki (Printf.sprintf "slot %d holds its row sum" i) (row_sum r) dec.(i))
    row

let test_bgv_cross_params_rejected () =
  let rng = Rng.create 112L in
  let p1 = C.Bgv.ahe_params ~n:64 () and p2 = C.Bgv.ahe_params ~n:128 () in
  let _, pk1 = C.Bgv.keygen p1 rng in
  let _, pk2 = C.Bgv.keygen p2 rng in
  let c1 = C.Bgv.encrypt pk1 rng [| 1 |] and c2 = C.Bgv.encrypt pk2 rng [| 2 |] in
  checkb "mixed-parameter add rejected" true
    (try
       ignore (C.Bgv.add c1 c2);
       false
     with Invalid_argument _ -> true)

let test_bgv_values_reduced_mod_t () =
  let rng = Rng.create 113L in
  let p = C.Bgv.ahe_params ~n:64 () in
  let sk, pk = C.Bgv.keygen p rng in
  let big = p.C.Bgv.t + 5 in
  let dec = C.Bgv.decrypt sk (C.Bgv.encrypt pk rng [| big |]) in
  checki "values wrap mod t" 5 dec.(0)

let test_bgv_degree2_add () =
  (* Adding a degree-2 product to a fresh ciphertext must still decrypt. *)
  let rng = Rng.create 114L in
  let p = C.Bgv.fhe_params ~n:64 () in
  let sk, pk = C.Bgv.keygen p rng in
  let a = Array.init 64 (fun i -> i) in
  let prod = C.Bgv.mul (C.Bgv.encrypt pk rng a) (C.Bgv.encrypt pk rng a) in
  let shifted = C.Bgv.add prod (C.Bgv.encrypt pk rng (Array.make 64 7)) in
  let want = Array.init 64 (fun i -> ((i * i) + 7) mod p.C.Bgv.t) in
  Alcotest.check Alcotest.(array int) "deg2 + deg1" want (C.Bgv.decrypt sk shifted)

let test_bgv_mul_rejects_degree2_inputs () =
  let rng = Rng.create 115L in
  let p = C.Bgv.fhe_params ~n:64 () in
  let _sk, pk = C.Bgv.keygen p rng in
  let a = C.Bgv.encrypt pk rng [| 1 |] in
  let prod = C.Bgv.mul a a in
  checkb "degree-2 multiply rejected" true
    (try
       ignore (C.Bgv.mul prod a);
       false
     with Invalid_argument _ -> true)

let test_ntt_large_vs_naive () =
  let n = 1024 in
  let plan = C.Ntt.plan ~n ~p:p_test in
  let rng = Rng.create 116L in
  let a = C.Poly.random_uniform fld rng n in
  let b = C.Poly.random_uniform fld rng n in
  checkb "n=1024 NTT matches naive" true
    (C.Ntt.multiply plan a b = C.Poly.mul_naive fld a b)

let test_bgv_serialization_roundtrip () =
  let rng = Rng.create 117L in
  List.iter
    (fun p ->
      let sk, pk = C.Bgv.keygen p rng in
      let slots = Array.init 64 (fun i -> (i * 13) mod p.C.Bgv.t) in
      let ct = C.Bgv.encrypt pk rng slots in
      let wire = C.Bgv.serialize_ciphertext ct in
      checki "wire size matches the accounting"
        (C.Bgv.serialized_bytes p 1) (String.length wire);
      let back = C.Bgv.deserialize_ciphertext p wire in
      Alcotest.check Alcotest.(array int) "decrypts identically"
        (C.Bgv.decrypt sk ct) (C.Bgv.decrypt sk back);
      (* degree-2 ciphertexts too *)
      (if List.length p.C.Bgv.q_primes = 2 then begin
         let prod = C.Bgv.mul ct ct in
         let wire2 = C.Bgv.serialize_ciphertext prod in
         checki "degree-2 size" (C.Bgv.serialized_bytes p 2) (String.length wire2);
         Alcotest.check Alcotest.(array int) "degree-2 roundtrip"
           (C.Bgv.decrypt sk prod)
           (C.Bgv.decrypt sk (C.Bgv.deserialize_ciphertext p wire2))
       end))
    [ C.Bgv.ahe_params ~n:64 (); C.Bgv.fhe_params ~n:64 () ]

let test_bgv_deserialize_rejects () =
  let rng = Rng.create 118L in
  let p = C.Bgv.ahe_params ~n:64 () in
  let _sk, pk = C.Bgv.keygen p rng in
  let wire = C.Bgv.serialize_ciphertext (C.Bgv.encrypt pk rng [| 1 |]) in
  checkb "truncated rejected" true
    (try
       ignore (C.Bgv.deserialize_ciphertext p (String.sub wire 0 50));
       false
     with Invalid_argument _ -> true);
  let p2 = C.Bgv.ahe_params ~n:128 () in
  checkb "wrong params rejected" true
    (try
       ignore (C.Bgv.deserialize_ciphertext p2 wire);
       false
     with Invalid_argument _ -> true);
  (* Non-canonical coefficient: set 4 bytes to 0xFF. *)
  let bad = Bytes.of_string wire in
  Bytes.set_int32_le bad 20 0x7FFFFFFFl;
  checkb "non-canonical coefficient rejected" true
    (try
       ignore (C.Bgv.deserialize_ciphertext p (Bytes.to_string bad));
       false
     with Invalid_argument _ -> true)

(* ---------------- Shamir / VSR ---------------- *)

let prop_shamir_reconstruct =
  QCheck.Test.make ~name:"Shamir reconstruct from any t+1 shares" ~count:100
    QCheck.(pair (int_bound (p_test - 1)) (int_range 1 5))
    (fun (secret, threshold) ->
      let rng = Rng.create (Int64.of_int (secret + threshold)) in
      let parties = (2 * threshold) + 1 in
      let shares = C.Shamir.share fld rng ~secret ~threshold ~parties in
      let sub = Array.to_list (Array.sub shares 0 (threshold + 1)) in
      let sub2 =
        Array.to_list (Array.sub shares (parties - threshold - 1) (threshold + 1))
      in
      C.Shamir.reconstruct fld sub = secret
      && C.Shamir.reconstruct fld sub2 = secret)

let test_shamir_linear () =
  let rng = Rng.create 201L in
  let s1 = C.Shamir.share fld rng ~secret:100 ~threshold:2 ~parties:5 in
  let s2 = C.Shamir.share fld rng ~secret:23 ~threshold:2 ~parties:5 in
  let sums = Array.map2 (C.Shamir.add_in fld) s1 s2 in
  checki "share addition" 123 (C.Shamir.reconstruct fld (Array.to_list sums));
  let scaled = Array.map (C.Shamir.scale_in fld 7) s1 in
  checki "share scaling" 700 (C.Shamir.reconstruct fld (Array.to_list scaled))

let test_shamir_rejects () =
  let rng = Rng.create 202L in
  Alcotest.check_raises "threshold >= parties"
    (Invalid_argument "Shamir.share: need 0 <= threshold < parties") (fun () ->
      ignore (C.Shamir.share fld rng ~secret:1 ~threshold:5 ~parties:5));
  let shares = C.Shamir.share fld rng ~secret:1 ~threshold:1 ~parties:3 in
  Alcotest.check_raises "duplicate shares"
    (Invalid_argument "Shamir.reconstruct: duplicate share indices") (fun () ->
      ignore (C.Shamir.reconstruct fld [ shares.(0); shares.(0) ]))

let test_shamir_robust_corrects_cheaters () =
  let rng = Rng.create 204L in
  (* n = 9 shares, threshold 3: decoding radius floor((9-3-1)/2) = 2. *)
  let shares = C.Shamir.share fld rng ~secret:424242 ~threshold:3 ~parties:9 in
  let corrupt k =
    Array.mapi
      (fun i (s : C.Shamir.share) ->
        if i < k then { s with C.Shamir.value = C.Field.add fld s.C.Shamir.value 99 }
        else s)
      shares
    |> Array.to_list
  in
  (match C.Shamir.reconstruct_robust fld ~threshold:3 (corrupt 0) with
  | Ok (v, []) -> checki "clean decode" 424242 v
  | _ -> Alcotest.fail "clean decode failed");
  (match C.Shamir.reconstruct_robust fld ~threshold:3 (corrupt 1) with
  | Ok (v, [ 1 ]) -> checki "1 error corrected" 424242 v
  | Ok (_, ch) ->
      Alcotest.failf "wrong cheater list [%s]"
        (String.concat ";" (List.map string_of_int ch))
  | Error m -> Alcotest.fail m);
  (match C.Shamir.reconstruct_robust fld ~threshold:3 (corrupt 2) with
  | Ok (v, [ 1; 2 ]) -> checki "2 errors corrected" 424242 v
  | Ok (_, ch) ->
      Alcotest.failf "wrong cheater list [%s]"
        (String.concat ";" (List.map string_of_int ch))
  | Error m -> Alcotest.fail m);
  (* 3 errors exceed the radius: must refuse, never return a wrong secret. *)
  match C.Shamir.reconstruct_robust fld ~threshold:3 (corrupt 3) with
  | Error _ -> ()
  | Ok (v, _) -> checkb "beyond radius must not mis-decode" true (v = 424242)

let prop_shamir_robust =
  QCheck.Test.make ~name:"Berlekamp-Welch corrects up to the radius" ~count:50
    QCheck.(triple (int_bound (p_test - 1)) (int_range 1 4) (int_range 0 2))
    (fun (secret, threshold, errors) ->
      let rng = Rng.create (Int64.of_int (secret lxor (threshold * 131))) in
      let parties = threshold + 1 + (2 * errors) + 1 in
      let shares = C.Shamir.share fld rng ~secret ~threshold ~parties in
      (* corrupt [errors] random distinct shares with random garbage *)
      let victims = Arb_util.Rng.sample_without_replacement rng errors parties in
      Array.iter
        (fun i ->
          shares.(i) <-
            { (shares.(i)) with
              C.Shamir.value =
                C.Field.add fld shares.(i).C.Shamir.value (1 + Arb_util.Rng.int rng 1000) })
        victims;
      match C.Shamir.reconstruct_robust fld ~threshold (Array.to_list shares) with
      | Ok (v, cheaters) ->
          v = secret
          && List.sort compare cheaters
             = List.sort compare (Array.to_list (Array.map (fun i -> i + 1) victims))
      | Error _ -> false)

let prop_shamir_never_silently_wrong =
  (* Corruption beyond the decoding radius must be detected: the decoder
     either refuses or still lands on the true secret — it never presents
     a wrong value as a successful reconstruction. *)
  QCheck.Test.make ~name:"beyond-radius corruption never mis-decodes silently"
    ~count:100
    QCheck.(triple (int_bound (p_test - 1)) (int_range 1 3) (int_range 0 6))
    (fun (secret, threshold, extra) ->
      let rng = Rng.create (Int64.of_int (secret + (31 * threshold) + extra)) in
      let parties = (2 * threshold) + 1 in
      let radius = (parties - threshold - 1) / 2 in
      let errors = min parties (radius + 1 + extra) in
      let shares = C.Shamir.share fld rng ~secret ~threshold ~parties in
      for i = 0 to errors - 1 do
        shares.(i) <-
          {
            (shares.(i)) with
            C.Shamir.value =
              C.Field.add fld shares.(i).C.Shamir.value (1 + Rng.int rng 9999);
          }
      done;
      match C.Shamir.reconstruct_robust fld ~threshold (Array.to_list shares) with
      | Error _ -> true
      | Ok (v, _) -> v = secret)

let prop_vsr_roundtrip =
  QCheck.Test.make ~name:"VSR moves a secret between committees" ~count:50
    QCheck.(int_bound (p_test - 1))
    (fun secret ->
      let rng = Rng.create (Int64.of_int (secret + 7)) in
      (* Committee A: threshold 2, 5 members. *)
      let a_shares = C.Shamir.share fld rng ~secret ~threshold:2 ~parties:5 in
      (* Each member of A re-shares to committee B: threshold 3, 7 members. *)
      let subs =
        Array.map
          (fun sh ->
            fst (C.Vsr.redistribute fld rng sh ~new_threshold:3 ~new_parties:7))
          a_shares
      in
      let sender_idxs =
        Array.to_list (Array.map (fun (s : C.Shamir.share) -> s.C.Shamir.idx) a_shares)
      in
      let b_shares =
        List.init 7 (fun j ->
            let pairs =
              Array.to_list
                (Array.map
                   (fun member_subs ->
                     let sub = member_subs.(j) in
                     (sub.C.Vsr.from_idx, sub.C.Vsr.value))
                   subs)
            in
            C.Vsr.combine fld ~sender_idxs pairs ~to_idx:(j + 1))
      in
      C.Shamir.reconstruct fld b_shares = secret)

let test_vsr_commitments () =
  let rng = Rng.create 203L in
  let share = { C.Shamir.idx = 2; value = 12345 } in
  let subs, commits = C.Vsr.redistribute fld rng share ~new_threshold:2 ~new_parties:5 in
  Array.iteri
    (fun i sub ->
      checkb "commitment verifies" true (C.Vsr.verify_subshare sub commits.(i));
      let bad = { sub with C.Vsr.value = sub.C.Vsr.value + 1 } in
      checkb "tampered subshare fails" false (C.Vsr.verify_subshare bad commits.(i)))
    subs

(* ---------------- ZKP ---------------- *)

let test_zkp_one_hot () =
  let stmt = C.Zkp.One_hot { length = 8 } in
  let w = [| 0; 0; 1; 0; 0; 0; 0; 0 |] in
  let proof = C.Zkp.prove stmt ~witness:w ~prover:"d1" ~nonce:"q1" in
  checkb "verifies" true (C.Zkp.verify stmt proof ~prover:"d1" ~nonce:"q1");
  checkb "replay to other query fails" false
    (C.Zkp.verify stmt proof ~prover:"d1" ~nonce:"q2");
  checkb "stolen proof fails" false (C.Zkp.verify stmt proof ~prover:"d2" ~nonce:"q1");
  checkb "forged proof fails" false
    (C.Zkp.verify stmt
       (C.Zkp.forge stmt ~prover:"d1" ~nonce:"q1")
       ~prover:"d1" ~nonce:"q1")

let test_zkp_satisfies () =
  checkb "one-hot ok" true (C.Zkp.satisfies (C.Zkp.One_hot { length = 3 }) [| 0; 1; 0 |]);
  checkb "two ones bad" false
    (C.Zkp.satisfies (C.Zkp.One_hot { length = 3 }) [| 1; 1; 0 |]);
  checkb "all zero bad" false
    (C.Zkp.satisfies (C.Zkp.One_hot { length = 3 }) [| 0; 0; 0 |]);
  checkb "range ok" true
    (C.Zkp.satisfies (C.Zkp.Range { lo = 0; hi = 10; count = 2 }) [| 3; 10 |]);
  checkb "range violation" false
    (C.Zkp.satisfies (C.Zkp.Range { lo = 0; hi = 10; count = 2 }) [| 3; 11 |]);
  checkb "binned one-hot ok" true
    (C.Zkp.satisfies (C.Zkp.One_hot_binned { bins = 2; length = 2 }) [| 0; 0; 1; 0 |]);
  checkb "bits ok" true (C.Zkp.satisfies (C.Zkp.Bits { count = 3 }) [| 1; 0; 1 |])

let test_zkp_prove_rejects_bad_witness () =
  Alcotest.check_raises "unsatisfying witness"
    (Invalid_argument "Zkp.prove: witness does not satisfy the statement") (fun () ->
      ignore
        (C.Zkp.prove (C.Zkp.One_hot { length = 2 }) ~witness:[| 1; 1 |] ~prover:"d"
           ~nonce:"n"))

(* ---------------- Sortition ---------------- *)

let make_devices n =
  Array.init n (fun i -> { C.Sortition.id = i; seed = Printf.sprintf "seed%d" i })

let test_sortition_deterministic () =
  let devices = make_devices 100 in
  let a1 = C.Sortition.select ~devices ~block:"B" ~query_id:1 ~committees:3 ~size:5 in
  let a2 = C.Sortition.select ~devices ~block:"B" ~query_id:1 ~committees:3 ~size:5 in
  Alcotest.check
    Alcotest.(array (array int))
    "same committees" a1.C.Sortition.committees a2.C.Sortition.committees

let test_sortition_block_changes_selection () =
  let devices = make_devices 100 in
  let a1 = C.Sortition.select ~devices ~block:"B1" ~query_id:1 ~committees:3 ~size:5 in
  let a2 = C.Sortition.select ~devices ~block:"B2" ~query_id:1 ~committees:3 ~size:5 in
  checkb "different blocks give different committees" true
    (a1.C.Sortition.committees <> a2.C.Sortition.committees)

let test_sortition_disjoint () =
  let devices = make_devices 200 in
  let a = C.Sortition.select ~devices ~block:"B" ~query_id:2 ~committees:5 ~size:7 in
  let all = Array.concat (Array.to_list a.C.Sortition.committees) in
  checki "everyone on at most one committee" (Array.length all)
    (List.length (List.sort_uniq compare (Array.to_list all)))

let test_sortition_verify_member () =
  let devices = make_devices 60 in
  let a = C.Sortition.select ~devices ~block:"B" ~query_id:3 ~committees:4 ~size:5 in
  Array.iteri
    (fun c members ->
      Array.iter
        (fun id ->
          match
            C.Sortition.verify_member ~devices ~block:"B" ~query_id:3 ~committees:4
              ~size:5 ~device:devices.(id)
          with
          | Some c' -> checki "membership verifiable" c c'
          | None -> Alcotest.fail "selected member not verifiable")
        members)
    a.C.Sortition.committees

let test_sortition_reassign () =
  let devices = make_devices 60 in
  let a = C.Sortition.select ~devices ~block:"B" ~query_id:4 ~committees:3 ~size:5 in
  let a' = C.Sortition.reassign_failed a ~failed:1 in
  checki "failed committee emptied" 0 (Array.length a'.C.Sortition.committees.(1));
  checki "successor absorbed members" 10 (Array.length a'.C.Sortition.committees.(2))

let test_sortition_rejects () =
  let devices = make_devices 10 in
  Alcotest.check_raises "not enough devices"
    (Invalid_argument "Sortition.select: not enough devices") (fun () ->
      ignore (C.Sortition.select ~devices ~block:"B" ~query_id:1 ~committees:3 ~size:5))

let test_sortition_roughly_uniform () =
  (* Across many queries, each device should serve with similar frequency. *)
  let devices = make_devices 40 in
  let counts = Array.make 40 0 in
  for q = 1 to 300 do
    let a =
      C.Sortition.select ~devices ~block:(Printf.sprintf "B%d" q) ~query_id:q
        ~committees:2 ~size:5
    in
    Array.iter
      (Array.iter (fun id -> counts.(id) <- counts.(id) + 1))
      a.C.Sortition.committees
  done;
  (* Expected 300*10/40 = 75 selections each. *)
  Array.iteri
    (fun i c ->
      checkb (Printf.sprintf "device %d frequency %d" i c) true (c > 40 && c < 115))
    counts

let () =
  Alcotest.run "arb_crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha_vectors;
          Alcotest.test_case "million a" `Slow test_sha_million_a;
          Alcotest.test_case "incremental" `Quick test_sha_incremental;
          Alcotest.test_case "hmac vectors" `Quick test_hmac_vectors;
          qtest prop_sha_deterministic_and_sensitive;
        ] );
      ( "merkle",
        [
          qtest prop_merkle_inclusion;
          Alcotest.test_case "tamper detection" `Quick test_merkle_tamper;
          Alcotest.test_case "domain separation" `Quick
            test_merkle_second_preimage_separation;
          Alcotest.test_case "empty rejected" `Quick test_merkle_empty_rejected;
        ] );
      ( "signatures",
        [
          Alcotest.test_case "roundtrip" `Quick test_sig_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_sig_deterministic;
          Alcotest.test_case "tamper" `Quick test_sig_tamper;
        ] );
      ( "field",
        [
          qtest prop_field_ring_laws;
          qtest prop_field_inverse;
          Alcotest.test_case "primality" `Quick test_field_is_prime;
          Alcotest.test_case "root of unity" `Quick test_field_root_of_unity;
          Alcotest.test_case "centering" `Quick test_field_center;
          Alcotest.test_case "rejects" `Quick test_field_rejects;
        ] );
      ( "ntt",
        [
          qtest prop_ntt_roundtrip;
          qtest prop_ntt_vs_naive;
          Alcotest.test_case "negacyclic wraparound" `Quick
            test_ntt_negacyclic_wraparound;
          Alcotest.test_case "rejects" `Quick test_ntt_rejects;
          Alcotest.test_case "n=1024 vs naive" `Slow test_ntt_large_vs_naive;
          qtest prop_field_barrett_vs_mod;
          qtest prop_ntt_lazy_vs_reference;
          qtest prop_ntt_multiply_vs_naive_all_rns;
          qtest prop_poly_into_matches_allocating;
        ] );
      ( "bgv",
        [
          Alcotest.test_case "roundtrip" `Quick test_bgv_roundtrip;
          Alcotest.test_case "homomorphic add/sub" `Quick test_bgv_homomorphic_add;
          Alcotest.test_case "long sum (aggregator workload)" `Slow test_bgv_long_sum;
          Alcotest.test_case "mul_plain" `Quick test_bgv_mul_plain;
          Alcotest.test_case "mul + relinearize" `Quick test_bgv_mul_and_relin;
          Alcotest.test_case "threshold decryption" `Quick test_bgv_threshold;
          Alcotest.test_case "missing share gives garbage" `Quick
            test_bgv_threshold_missing_share_garbage;
          Alcotest.test_case "symmetric encryption" `Quick test_bgv_sk_encryption;
          Alcotest.test_case "parameter validation" `Quick test_bgv_param_validation;
          Alcotest.test_case "plaintext modulus search" `Quick
            test_bgv_find_plaintext_modulus;
          qtest prop_bgv_add_matches_plaintext;
          qtest prop_bgv_mul_matches_plaintext;
          qtest prop_bgv_mul_then_add_matches_plaintext;
          Alcotest.test_case "galois permutes slots" `Quick
            test_bgv_galois_permutes_slots;
          Alcotest.test_case "rotate-and-add row sums" `Slow
            test_bgv_rotate_and_add_row_sums;
          Alcotest.test_case "cross-parameter rejection" `Quick
            test_bgv_cross_params_rejected;
          Alcotest.test_case "values reduced mod t" `Quick test_bgv_values_reduced_mod_t;
          Alcotest.test_case "degree-2 plus degree-1" `Quick test_bgv_degree2_add;
          Alcotest.test_case "mul rejects degree-2 inputs" `Quick
            test_bgv_mul_rejects_degree2_inputs;
          Alcotest.test_case "serialization roundtrip" `Quick
            test_bgv_serialization_roundtrip;
          Alcotest.test_case "deserialize rejects malformed" `Quick
            test_bgv_deserialize_rejects;
        ] );
      ( "shamir-vsr",
        [
          qtest prop_shamir_reconstruct;
          Alcotest.test_case "linearity" `Quick test_shamir_linear;
          Alcotest.test_case "rejects" `Quick test_shamir_rejects;
          Alcotest.test_case "robust reconstruction (Berlekamp-Welch)" `Quick
            test_shamir_robust_corrects_cheaters;
          qtest prop_shamir_robust;
          qtest prop_shamir_never_silently_wrong;
          qtest prop_vsr_roundtrip;
          Alcotest.test_case "vsr commitments" `Quick test_vsr_commitments;
        ] );
      ( "zkp",
        [
          Alcotest.test_case "one-hot prove/verify" `Quick test_zkp_one_hot;
          Alcotest.test_case "satisfies" `Quick test_zkp_satisfies;
          Alcotest.test_case "bad witness rejected" `Quick
            test_zkp_prove_rejects_bad_witness;
        ] );
      ( "sortition",
        [
          Alcotest.test_case "deterministic" `Quick test_sortition_deterministic;
          Alcotest.test_case "block sensitivity" `Quick
            test_sortition_block_changes_selection;
          Alcotest.test_case "disjoint committees" `Quick test_sortition_disjoint;
          Alcotest.test_case "verify_member" `Quick test_sortition_verify_member;
          Alcotest.test_case "churn reassignment" `Quick test_sortition_reassign;
          Alcotest.test_case "rejects" `Quick test_sortition_rejects;
          Alcotest.test_case "roughly uniform" `Slow test_sortition_roughly_uniform;
        ] );
    ]
