(* Tests for the differential-privacy layer: mechanisms, budget accounting,
   committee sizing. *)

module M = Arb_dp.Mechanisms
module B = Arb_dp.Budget
module Cm = Arb_dp.Committee
module Rng = Arb_util.Rng
module S = Arb_util.Stats

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let qtest = QCheck_alcotest.to_alcotest

(* ---------------- Laplace mechanism ---------------- *)

let test_laplace_centering_and_scale () =
  let rng = Rng.create 1L in
  let n = 100_000 in
  let samples =
    Array.init n (fun _ -> M.laplace rng ~epsilon:0.5 ~sensitivity:2.0 10.0)
  in
  (* scale = sens/eps = 4; mean 10, var 2*16 = 32 *)
  checkb "mean near 10" true (Float.abs (S.mean samples -. 10.0) < 0.1);
  checkb "variance near 32" true (Float.abs (S.variance samples -. 32.0) < 2.0)

let test_laplace_rejects () =
  let rng = Rng.create 2L in
  Alcotest.check_raises "epsilon 0"
    (Invalid_argument "Mechanisms.laplace: epsilon <= 0") (fun () ->
      ignore (M.laplace rng ~epsilon:0.0 ~sensitivity:1.0 0.0))

(* Empirical check of the core epsilon-DP inequality for the Laplace
   mechanism on two adjacent counts: P[out > thr | d1] <= e^eps P[out > thr | d2] + slack. *)
let test_laplace_dp_inequality () =
  let eps = 0.5 in
  let trials = 60_000 in
  let count db_value =
    let rng = Rng.create 3L in
    let hits = ref 0 in
    for _ = 1 to trials do
      if M.laplace rng ~epsilon:eps ~sensitivity:1.0 db_value > 10.5 then incr hits
    done;
    float_of_int !hits /. float_of_int trials
  in
  let p1 = count 10.0 and p2 = count 9.0 in
  checkb "dp inequality (with sampling slack)" true (p1 <= (exp eps *. p2) +. 0.01)

(* ---------------- exponential mechanism ---------------- *)

let em_distribution mechanism scores trials seed =
  let rng = Rng.create seed in
  let counts = Array.make (Array.length scores) 0 in
  for _ = 1 to trials do
    let w = mechanism rng scores in
    counts.(w) <- counts.(w) + 1
  done;
  Array.map (fun c -> float_of_int c /. float_of_int trials) counts

let theoretical_em_probs ~epsilon ~sensitivity scores =
  let k = epsilon /. (2.0 *. sensitivity) in
  let m = Array.fold_left Float.max neg_infinity scores in
  let ws = Array.map (fun s -> exp (k *. (s -. m))) scores in
  let total = Array.fold_left ( +. ) 0.0 ws in
  Array.map (fun w -> w /. total) ws

let test_em_gumbel_distribution () =
  let scores = [| 0.0; 2.0; 4.0 |] in
  let got =
    em_distribution
      (fun rng s -> M.exponential_gumbel rng ~epsilon:1.0 ~sensitivity:1.0 s)
      scores 60_000 4L
  in
  let want = theoretical_em_probs ~epsilon:1.0 ~sensitivity:1.0 scores in
  Array.iteri
    (fun i p ->
      checkb
        (Printf.sprintf "category %d: got %.3f want %.3f" i got.(i) p)
        true
        (Float.abs (got.(i) -. p) < 0.015))
    want

let test_em_sample_distribution () =
  (* The exponentiation instantiation must induce the same distribution. *)
  let scores = [| 0.0; 2.0; 4.0 |] in
  let got =
    em_distribution
      (fun rng s -> M.exponential_sample rng ~epsilon:1.0 ~sensitivity:1.0 s)
      scores 60_000 5L
  in
  let want = theoretical_em_probs ~epsilon:1.0 ~sensitivity:1.0 scores in
  Array.iteri
    (fun i p ->
      checkb
        (Printf.sprintf "category %d: got %.3f want %.3f" i got.(i) p)
        true
        (Float.abs (got.(i) -. p) < 0.015))
    want

let test_em_epsilon_controls_concentration () =
  let scores = [| 0.0; 10.0 |] in
  let prob eps =
    (em_distribution
       (fun rng s -> M.exponential_gumbel rng ~epsilon:eps ~sensitivity:1.0 s)
       scores 20_000 6L).(1)
  in
  let p_low = prob 0.1 and p_high = prob 2.0 in
  checkb "higher epsilon concentrates more" true (p_high > p_low +. 0.1)

let test_top_k () =
  let rng = Rng.create 7L in
  let scores = [| 100.0; 90.0; 80.0; 1.0; 2.0; 3.0 |] in
  let top = M.top_k rng ~epsilon:5.0 ~sensitivity:1.0 ~k:3 scores in
  checki "k results" 3 (Array.length top);
  let distinct = List.sort_uniq compare (Array.to_list top) in
  checki "distinct" 3 (List.length distinct);
  (* With huge epsilon the true top 3 should be found. *)
  checkb "found true top-3" true
    (List.sort compare (Array.to_list top) = [ 0; 1; 2 ]);
  (* one-shot variant *)
  let top' = M.top_k rng ~epsilon:5.0 ~sensitivity:1.0 ~k:3 ~fresh_noise:false scores in
  checkb "one-shot also finds top-3" true
    (List.sort compare (Array.to_list top') = [ 0; 1; 2 ])

let test_top_k_rejects () =
  let rng = Rng.create 8L in
  Alcotest.check_raises "k too big" (Invalid_argument "Mechanisms.top_k") (fun () ->
      ignore (M.top_k rng ~epsilon:1.0 ~sensitivity:1.0 ~k:5 [| 1.0; 2.0 |]))

let test_noisy_max_gap () =
  let rng = Rng.create 9L in
  let w, gap = M.noisy_max_gap rng ~epsilon:5.0 ~sensitivity:1.0 [| 1.0; 500.0; 3.0 |] in
  checki "winner" 1 w;
  checkb "gap positive" true (gap > 0.0);
  checkb "gap near 497" true (Float.abs (gap -. 497.0) < 40.0)

let test_geometric_stats () =
  let rng = Rng.create 10L in
  let n = 100_000 in
  let eps = 0.5 in
  let samples = Array.init n (fun _ -> float_of_int (M.geometric rng ~epsilon:eps ~sensitivity:1.0 0)) in
  checkb "integer mean near 0" true (Float.abs (S.mean samples) < 0.05);
  (* Two-sided geometric variance: 2 alpha / (1-alpha)^2 with alpha = e^-eps. *)
  let alpha = exp (-.eps) in
  let want_var = 2.0 *. alpha /. ((1.0 -. alpha) ** 2.0) in
  checkb
    (Printf.sprintf "variance %.2f near %.2f" (S.variance samples) want_var)
    true
    (Float.abs (S.variance samples -. want_var) /. want_var < 0.05);
  (* The zero-rejection detail: P(0) must be (1-a)/(1+a), not doubled. *)
  let zeros = Array.fold_left (fun acc x -> if x = 0.0 then acc + 1 else acc) 0
      (Array.map Fun.id samples) in
  let p0 = float_of_int zeros /. float_of_int n in
  let want_p0 = (1.0 -. alpha) /. (1.0 +. alpha) in
  checkb (Printf.sprintf "P(0) = %.3f near %.3f" p0 want_p0) true
    (Float.abs (p0 -. want_p0) < 0.01)

let test_em_base2_distribution () =
  let scores = [| 0.0; 2.0; 4.0 |] in
  let got =
    em_distribution
      (fun rng s -> M.exponential_base2 rng ~epsilon:1.0 ~sensitivity:1.0 s)
      scores 60_000 11L
  in
  let want = theoretical_em_probs ~epsilon:1.0 ~sensitivity:1.0 scores in
  Array.iteri
    (fun i p ->
      checkb
        (Printf.sprintf "category %d: got %.3f want %.3f" i got.(i) p)
        true
        (Float.abs (got.(i) -. p) < 0.015))
    want

let test_em_base2_weights_deterministic () =
  (* Same rng seed, same scores -> bit-identical choices (the base-2 lattice
     leaves no room for platform transcendental differences). *)
  let scores = [| 1.0; 3.5; 2.25; 7.0 |] in
  let run seed =
    let rng = Rng.create seed in
    List.init 50 (fun _ -> M.exponential_base2 rng ~epsilon:0.8 ~sensitivity:1.0 scores)
  in
  checkb "bit-identical runs" true (run 12L = run 12L)

(* ---------------- budget ---------------- *)

let test_budget_arithmetic () =
  let b = B.create ~epsilon:1.0 ~delta:1e-6 in
  let cost = B.create ~epsilon:0.4 ~delta:2e-7 in
  (match B.charge b ~cost with
  | Some left ->
      checkf "eps left" 0.6 left.B.epsilon;
      checkf "delta left" 8e-7 left.B.delta
  | None -> Alcotest.fail "charge should succeed");
  checkb "over-charge refused" true
    (B.charge b ~cost:(B.create ~epsilon:1.5 ~delta:0.0) = None);
  checkb "delta over-charge refused" true
    (B.charge b ~cost:(B.create ~epsilon:0.5 ~delta:1e-5) = None);
  let doubled = B.scale cost 2.0 in
  checkf "scale eps" 0.8 doubled.B.epsilon;
  let total = B.spend_all cost cost in
  checkf "sequential composition" 0.8 total.B.epsilon

let test_budget_rejects () =
  Alcotest.check_raises "negative" (Invalid_argument "Budget.create: negative")
    (fun () -> ignore (B.create ~epsilon:(-1.0) ~delta:0.0))

let test_amplification () =
  (* ln(1 + phi(e^eps - 1)); spot values *)
  let e = B.amplified_epsilon ~epsilon:1.0 ~phi:0.1 in
  checkb "amplified smaller" true (e < 1.0);
  checkb "formula value" true (Float.abs (e -. Float.log (1.0 +. (0.1 *. (Float.exp 1.0 -. 1.0)))) < 1e-12);
  (* phi = 1 gives back the original epsilon *)
  checkb "phi=1 identity" true (Float.abs (B.amplified_epsilon ~epsilon:0.7 ~phi:1.0 -. 0.7) < 1e-12);
  (* small phi, small eps: ~ phi * eps *)
  let small = B.amplified_epsilon ~epsilon:0.1 ~phi:0.01 in
  checkb "linear regime" true (Float.abs (small -. 0.001) < 1e-4)

(* Subsampling amplification: a Bernoulli(phi) device sample charges
   ln(1 + phi(e^eps - 1)) — strictly below the full epsilon, monotone in
   the sampling rate. *)
let prop_amplified_strictly_below_and_monotone =
  QCheck.Test.make
    ~name:"amplified epsilon strictly below full, monotone in phi" ~count:500
    QCheck.(
      triple (float_range 0.01 5.0) (float_range 0.001 0.99)
        (float_range 0.001 0.99))
    (fun (eps, a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      let e_lo = B.amplified_epsilon ~epsilon:eps ~phi:lo
      and e_hi = B.amplified_epsilon ~epsilon:eps ~phi:hi in
      e_hi < eps && e_lo <= e_hi && e_lo > 0.0)

let prop_amplify_budget =
  QCheck.Test.make
    ~name:"Budget.amplify: strict epsilon shrink, delta scales by phi"
    ~count:500
    QCheck.(pair (float_range 0.01 3.0) (float_range 0.001 0.99))
    (fun (eps, phi) ->
      let cost = B.create ~epsilon:eps ~delta:1e-6 in
      let a = B.amplify cost ~phi in
      a.B.epsilon < cost.B.epsilon
      && Float.abs (a.B.epsilon -. B.amplified_epsilon ~epsilon:eps ~phi)
         < 1e-12
      && Float.abs (a.B.delta -. (1e-6 *. phi)) < 1e-20)

(* A submission whose tolerance is outside (0, 1] is refused at service
   admission — before any budget projection — so both the session's
   sliding window and the service's global budget stay byte-identical. *)
let test_refused_tolerance_budget_intact () =
  let module Sv = Arb_service.Service in
  let module Wk = Arb_service.Workload in
  let module E = Arb_continual.Engine in
  let svc =
    Sv.create ~budget:(B.create ~epsilon:2.0 ~delta:1e-6) ~devices:24 ~seed:11
      ()
  in
  let eng = E.create ~service:svc () in
  let sub =
    {
      Wk.query = "top1";
      epsilon = 0.5;
      categories = None;
      goal = Arb_planner.Constraints.Min_part_exp_time;
      repeat = 1;
      every = Some 1;
      window =
        Some
          {
            Wk.w_epochs = 4;
            w_budget = B.create ~epsilon:1.0 ~delta:1e-6;
            w_compose = None;
          };
      tolerance = Some 1.5;
    }
  in
  (match E.register eng ~carry_state:false sub with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("register: " ^ m));
  let before = Sv.budget_left svc in
  (match E.tick eng with
  | [ { E.er_outcome = E.Ran { status = "refused"; _ }; er_window; _ } ] -> (
      match er_window with
      | Some (spent, _) ->
          checkb "window spend untouched" true
            (B.equal spent (B.create ~epsilon:0.0 ~delta:0.0))
      | None -> Alcotest.fail "windowed session lost its window")
  | _ -> Alcotest.fail "invalid tolerance was not refused");
  checkb "global budget byte-identical" true
    (B.equal before (Sv.budget_left svc))

let test_advanced_composition () =
  (* Small epsilon, many mechanisms: advanced composition beats basic. *)
  let eps = 0.01 and k = 1000 in
  let adv = B.advanced_composition ~epsilon:eps ~delta:0.0 ~k ~delta_slack:1e-6 in
  let basic = B.scale (B.create ~epsilon:eps ~delta:0.0) (float_of_int k) in
  checkb
    (Printf.sprintf "advanced %.3f < basic %.3f" adv.B.epsilon basic.B.epsilon)
    true (adv.B.epsilon < basic.B.epsilon);
  checkb "delta includes the slack" true (adv.B.delta >= 1e-6);
  (* Large epsilon, few mechanisms: basic can win — both are valid bounds. *)
  let adv2 = B.advanced_composition ~epsilon:2.0 ~delta:0.0 ~k:2 ~delta_slack:1e-6 in
  checkb "still a positive bound" true (adv2.B.epsilon > 0.0);
  checkb "rejects bad k" true
    (try ignore (B.advanced_composition ~epsilon:1.0 ~delta:0.0 ~k:0 ~delta_slack:0.1); false
     with Invalid_argument _ -> true)

let test_sqrt_k () =
  checkb "sqrt k" true (Float.abs (B.sqrt_k_epsilon ~epsilon:0.5 ~k:4 -. 1.0) < 1e-12)

(* ---------------- sliding-window accounting ---------------- *)

module W = B.Window

(* Dyadic costs: every partial sum is exactly representable in binary
   floating point, so conservation and commutativity hold with *exact*
   equality, independent of summation order. *)
let dyadic k =
  B.create
    ~epsilon:(float_of_int k /. 64.0)
    ~delta:(float_of_int k /. 1_048_576.0)

let test_window_basics () =
  let w = W.create ~horizon:3 ~limit:(B.create ~epsilon:1.0 ~delta:1e-5) in
  checki "starts at epoch 0" 0 (W.epoch w);
  ignore (W.advance w 1);
  let c = B.create ~epsilon:0.5 ~delta:0.0 in
  (match W.charge w ~cost:c with
  | Some b -> checkf "balance after first charge" 0.5 b.B.epsilon
  | None -> Alcotest.fail "affordable charge refused");
  ignore (W.advance w 2);
  ignore (W.charge w ~cost:c);
  checkb "exhausted window refuses" true (not (W.can_afford w ~cost:c));
  checkb "refused charge leaves state" true (W.charge w ~cost:c = None);
  checkf "spent over live window" 1.0 (W.spent w).B.epsilon;
  checkb "refund of an absent charge is false" true
    (not (W.refund w ~cost:(B.create ~epsilon:0.125 ~delta:0.0)));
  (match W.next_expiry w with
  | Some (e, r) ->
      checki "oldest charge expires at epoch 4" 4 e;
      checkf "and refunds exactly its cost" 0.5 r.B.epsilon
  | None -> Alcotest.fail "live window has no expiry");
  let refund = W.advance w 4 in
  checkf "advance returns the exact refund" 0.5 refund.B.epsilon;
  checkb "refund makes the window affordable again" true
    (W.can_afford w ~cost:c);
  checkb "backwards advance rejected" true
    (try ignore (W.advance w 1); false with Invalid_argument _ -> true);
  checkb "bad horizon rejected" true
    (try ignore (W.create ~horizon:0 ~limit:B.zero); false
     with Invalid_argument _ -> true)

let test_window_composed_partial () =
  let limit = B.create ~epsilon:100.0 ~delta:1.0 in
  let w = W.create ~horizon:2 ~limit in
  ignore (W.advance w 1);
  checkb "empty window composes to zero" true (B.equal (W.composed w) B.zero);
  let c = B.create ~epsilon:0.01 ~delta:0.0 in
  ignore (W.charge w ~cost:c);
  (* A single live charge composes to itself: k=1 advanced composition
     cannot beat the sequential bound. *)
  checkf "single charge composes to itself" c.B.epsilon
    (W.composed w).B.epsilon;
  for _ = 1 to 199 do ignore (W.charge w ~cost:c) done;
  let comp = W.composed ~delta_slack:1e-6 w in
  let seq = W.spent w in
  checkb "advanced beats sequential over 200 small charges" true
    (comp.B.epsilon < seq.B.epsilon);
  checkb "delta slack accounted" true (comp.B.delta >= 1e-6);
  (* Partially-filled window: expired charges must drop out of the
     composition, leaving only the live ones. *)
  ignore (W.advance w 2);
  ignore (W.charge w ~cost:(B.create ~epsilon:2.0 ~delta:0.0));
  ignore (W.advance w 3);
  checkb "composition covers live charges only" true
    (B.equal (W.composed w) (B.create ~epsilon:2.0 ~delta:0.0))

let prop_window_conservation =
  (* Random charge/advance interleavings: the live spend never exceeds the
     limit, refusals happen exactly when the prescreen says so, and once
     everything has expired the refunds add up to every accepted charge. *)
  QCheck.Test.make
    ~name:"window never over-spends; expiry refunds are exact" ~count:300
    QCheck.(
      pair (int_range 1 5)
        (list_of_size Gen.(int_range 1 40) (pair bool (int_range 1 16))))
    (fun (horizon, ops) ->
      let limit = B.create ~epsilon:0.25 ~delta:2e-4 in
      let w = W.create ~horizon ~limit in
      let epoch = ref 0 in
      let charged = ref B.zero and refunded = ref B.zero in
      List.iter
        (fun (is_charge, k) ->
          (if is_charge then begin
             let cost = dyadic k in
             let affordable = W.can_afford w ~cost in
             match W.charge w ~cost with
             | Some _ ->
                 if not affordable then
                   QCheck.Test.fail_report "charged past the prescreen";
                 charged := B.spend_all !charged cost
             | None ->
                 if affordable then
                   QCheck.Test.fail_report "refused an affordable charge"
           end
           else begin
             epoch := !epoch + 1 + (k mod 3);
             refunded := B.spend_all !refunded (W.advance w !epoch)
           end);
          let sp = W.spent w in
          if sp.B.epsilon > limit.B.epsilon || sp.B.delta > limit.B.delta then
            QCheck.Test.fail_report "window over-spent its limit")
        ops;
      refunded := B.spend_all !refunded (W.advance w (!epoch + horizon + 1));
      B.equal !charged !refunded)

let prop_window_commutative =
  (* Within an epoch, charge order is invisible in the serialized state,
     and a charge followed by its refund is a perfect no-op. *)
  QCheck.Test.make
    ~name:"charge/refund order within an epoch is commutative" ~count:300
    QCheck.(small_list (int_range 1 16))
    (fun ks ->
      let limit = B.create ~epsilon:1000.0 ~delta:1.0 in
      let bytes w = Arb_util.Json.to_string (W.to_json w) in
      let mk order =
        let w = W.create ~horizon:3 ~limit in
        ignore (W.advance w 1);
        List.iter (fun k -> ignore (W.charge w ~cost:(dyadic k))) order;
        w
      in
      let w1 = mk ks and w2 = mk (List.rev ks) in
      if not (W.equal w1 w2 && bytes w1 = bytes w2) then false
      else begin
        let w3 = mk ks in
        let extra = B.create ~epsilon:512.0 ~delta:0.5 in
        ignore (W.charge w3 ~cost:extra);
        W.refund w3 ~cost:extra && W.equal w1 w3 && bytes w1 = bytes w3
      end)

let test_budget_json_roundtrip () =
  let b = B.create ~epsilon:0.375 ~delta:1e-7 in
  checkb "budget json roundtrip" true (B.equal b (B.of_json (B.to_json b)));
  checkb "malformed budget json rejected" true
    (try ignore (B.of_json (Arb_util.Json.String "nope")); false
     with Arb_util.Json.Parse_error _ -> true)

(* ---------------- committee sizing ---------------- *)

let paper_p1 () = Cm.p1_of_round ~p:1e-8 ~rounds:1000

let test_committee_paper_setting () =
  (* §7.1: f = 3%, g = 0.15 gives committees of roughly 40 members. *)
  let p1 = paper_p1 () in
  let m = Cm.min_size ~f:0.03 ~g:0.15 ~committees:115_334 ~p1 in
  checkb (Printf.sprintf "topK-scale committees m=%d in [30,50]" m) true
    (m >= 30 && m <= 50);
  let m1 = Cm.min_size ~f:0.03 ~g:0.15 ~committees:1 ~p1 in
  checkb (Printf.sprintf "single committee m=%d in [20,45]" m1) true
    (m1 >= 20 && m1 <= 45)

let test_committee_monotone_in_committees () =
  let p1 = paper_p1 () in
  let m c = Cm.min_size ~f:0.03 ~g:0.15 ~committees:c ~p1 in
  checkb "more committees need larger m" true (m 100_000 >= m 100);
  checkb "even more" true (m 1_000_000 >= m 100_000)

let test_committee_monotone_in_f () =
  let p1 = paper_p1 () in
  checkb "more adversaries need larger m" true
    (Cm.min_size ~f:0.10 ~g:0.15 ~committees:100 ~p1
    > Cm.min_size ~f:0.01 ~g:0.15 ~committees:100 ~p1)

let test_committee_monotone_in_churn () =
  let p1 = paper_p1 () in
  checkb "more churn tolerance needs larger m" true
    (Cm.min_size ~f:0.03 ~g:0.4 ~committees:100 ~p1
    >= Cm.min_size ~f:0.03 ~g:0.05 ~committees:100 ~p1)

let test_committee_min_size_is_safe_and_tight () =
  let p1 = paper_p1 () in
  let m = Cm.min_size ~f:0.03 ~g:0.15 ~committees:1000 ~p1 in
  checkb "returned size is safe" true (Cm.is_safe ~m ~f:0.03 ~g:0.15 ~committees:1000 ~p1);
  checkb "m-1 is unsafe (tight)" true
    (m = 1 || not (Cm.is_safe ~m:(m - 1) ~f:0.03 ~g:0.15 ~committees:1000 ~p1))

let test_committee_failure_prob_monotone_in_m () =
  (* Larger committees fail less often (checked on even sizes to dodge the
     floor-induced parity wiggles). *)
  let fp m = Cm.log_failure_prob ~m ~f:0.03 ~g:0.15 ~committees:10 in
  checkb "40 safer than 20" true (fp 40 < fp 20);
  checkb "80 safer than 40" true (fp 80 < fp 40)

let test_committee_rejects () =
  Alcotest.check_raises "f too large for churn"
    (Invalid_argument "Committee: f too large relative to churn tolerance g")
    (fun () -> ignore (Cm.min_size ~f:0.45 ~g:0.2 ~committees:1 ~p1:1e-6))

let test_p1_roundtrip () =
  let p = 1e-8 and rounds = 1000 in
  let p1 = Cm.p1_of_round ~p ~rounds in
  let back = 1.0 -. ((1.0 -. p1) ** float_of_int rounds) in
  checkb "p1 roundtrip" true (Float.abs (back -. p) /. p < 1e-6)

let prop_failure_prob_decreases_with_even_m =
  QCheck.Test.make ~name:"failure probability decreases in m (even steps)" ~count:30
    QCheck.(int_range 5 40)
    (fun half ->
      let m = 2 * half in
      Cm.log_failure_prob ~m:(m + 20) ~f:0.03 ~g:0.15 ~committees:5
      <= Cm.log_failure_prob ~m ~f:0.03 ~g:0.15 ~committees:5 +. 1e-9)

let prop_min_size_sound =
  (* Guards the planner's committee-size cache: min_size must return a safe
     and tight m, be monotone in the committee count, and min_size_from
     seeded with the single-committee size (exactly what the cache does)
     must find the same answer as a scan from 1. *)
  QCheck.Test.make ~name:"min_size safe, tight, monotone; min_size_from agrees"
    ~count:60
    QCheck.(
      quad (float_range 0.005 0.2) (float_range 0.0 0.3) (int_range 1 2000)
        (int_range 1 2000))
    (fun (f, g, c1, c2) ->
      QCheck.assume (f < ((1.0 -. g) /. 2.0) -. 0.01);
      let p1 = 1e-9 in
      let lo = min c1 c2 and hi = max c1 c2 in
      let m_lo = Cm.min_size ~f ~g ~committees:lo ~p1 in
      let m_hi = Cm.min_size ~f ~g ~committees:hi ~p1 in
      Cm.is_safe ~m:m_lo ~f ~g ~committees:lo ~p1
      && (m_lo = 1 || not (Cm.is_safe ~m:(m_lo - 1) ~f ~g ~committees:lo ~p1))
      && m_lo <= m_hi
      && Cm.min_size_from ~start:m_lo ~f ~g ~committees:hi ~p1 = m_hi)

let () =
  Alcotest.run "arb_dp"
    [
      ( "laplace",
        [
          Alcotest.test_case "centering and scale" `Slow test_laplace_centering_and_scale;
          Alcotest.test_case "rejects" `Quick test_laplace_rejects;
          Alcotest.test_case "dp inequality (empirical)" `Slow test_laplace_dp_inequality;
        ] );
      ( "exponential",
        [
          Alcotest.test_case "gumbel distribution" `Slow test_em_gumbel_distribution;
          Alcotest.test_case "sampling distribution" `Slow test_em_sample_distribution;
          Alcotest.test_case "epsilon concentrates" `Slow
            test_em_epsilon_controls_concentration;
          Alcotest.test_case "top-k" `Quick test_top_k;
          Alcotest.test_case "top-k rejects" `Quick test_top_k_rejects;
          Alcotest.test_case "noisy max with gap" `Quick test_noisy_max_gap;
          Alcotest.test_case "geometric mechanism stats" `Slow test_geometric_stats;
          Alcotest.test_case "base-2 em distribution" `Slow test_em_base2_distribution;
          Alcotest.test_case "base-2 em deterministic" `Quick
            test_em_base2_weights_deterministic;
        ] );
      ( "budget",
        [
          Alcotest.test_case "arithmetic" `Quick test_budget_arithmetic;
          Alcotest.test_case "rejects" `Quick test_budget_rejects;
          Alcotest.test_case "amplification" `Quick test_amplification;
          qtest prop_amplified_strictly_below_and_monotone;
          qtest prop_amplify_budget;
          Alcotest.test_case "refused tolerance leaves budgets intact" `Quick
            test_refused_tolerance_budget_intact;
          Alcotest.test_case "sqrt-k" `Quick test_sqrt_k;
          Alcotest.test_case "advanced composition" `Quick test_advanced_composition;
          Alcotest.test_case "json roundtrip" `Quick test_budget_json_roundtrip;
        ] );
      ( "window",
        [
          Alcotest.test_case "sliding-window basics" `Quick test_window_basics;
          Alcotest.test_case "composition over a partial window" `Quick
            test_window_composed_partial;
          qtest prop_window_conservation;
          qtest prop_window_commutative;
        ] );
      ( "committee",
        [
          Alcotest.test_case "paper setting ~40" `Quick test_committee_paper_setting;
          Alcotest.test_case "monotone in committees" `Quick
            test_committee_monotone_in_committees;
          Alcotest.test_case "monotone in f" `Quick test_committee_monotone_in_f;
          Alcotest.test_case "monotone in churn" `Quick test_committee_monotone_in_churn;
          Alcotest.test_case "min_size safe and tight" `Quick
            test_committee_min_size_is_safe_and_tight;
          Alcotest.test_case "failure prob monotone in m" `Quick
            test_committee_failure_prob_monotone_in_m;
          Alcotest.test_case "rejects" `Quick test_committee_rejects;
          Alcotest.test_case "p1 roundtrip" `Quick test_p1_roundtrip;
          qtest prop_failure_prob_decreases_with_even_m;
          qtest prop_min_size_sound;
        ] );
    ]
