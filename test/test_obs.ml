(* Tests for the observability layer (lib/obs): metrics registry edge
   cases, span tracer nesting, clock injection, and the deterministic-mode
   canonical-bytes guarantees the profiling bench and the chaos suite
   rely on. *)

module Obs = Arb_obs
module M = Obs.Metrics
module Tr = Obs.Tracer
module J = Arb_util.Json

let qtest = QCheck_alcotest.to_alcotest
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  n = 0 || go 0

let raises_invalid f =
  match f () with
  | _ -> false
  | exception Invalid_argument _ -> true

(* --- metrics: registration and exposition --- *)

let test_counter_idempotent () =
  let t = M.create () in
  M.add t "requests_total" 1.0;
  M.add t "requests_total" 2.0;
  let c = M.counter t "requests_total" in
  M.inc c;
  checkb "one series" true
    (contains (M.to_prometheus t) "requests_total 4\n")

let test_label_canonicalization () =
  let t = M.create () in
  M.add t ~labels:[ ("b", "2"); ("a", "1") ] "x_total" 1.0;
  M.add t ~labels:[ ("a", "1"); ("b", "2") ] "x_total" 1.0;
  let text = M.to_prometheus t in
  checkb "same cell" true (contains text "x_total{a=\"1\",b=\"2\"} 2\n");
  checkb "no dup" false (contains text "x_total{b=\"2\",a=\"1\"}")

let test_counter_guards () =
  let t = M.create () in
  let c = M.counter t "c_total" in
  checkb "negative" true (raises_invalid (fun () -> M.inc ~by:(-1.0) c));
  checkb "nan" true (raises_invalid (fun () -> M.inc ~by:Float.nan c));
  checkb "kind clash" true
    (raises_invalid (fun () -> M.gauge t "c_total"))

let test_histogram_edges () =
  let t = M.create () in
  let buckets = [ 1.0; 5.0 ] in
  (* Underflow lands in the first bucket, a value exactly on a bound is
     inside it (le is inclusive), overflow lands in +Inf. *)
  M.observe_in t ~buckets "lat" 0.5;
  M.observe_in t ~buckets "lat" 1.0;
  M.observe_in t ~buckets "lat" 3.0;
  M.observe_in t ~buckets "lat" 7.0;
  let text = M.to_prometheus t in
  checkb "le=1 cumulative" true (contains text "lat_bucket{le=\"1\"} 2\n");
  checkb "le=5 cumulative" true (contains text "lat_bucket{le=\"5\"} 3\n");
  checkb "+Inf cumulative" true (contains text "lat_bucket{le=\"+Inf\"} 4\n");
  checkb "sum" true (contains text "lat_sum 11.5\n");
  checkb "count" true (contains text "lat_count 4\n")

let test_histogram_zero_observations () =
  let t = M.create () in
  ignore (M.histogram t ~buckets:[ 0.001; 0.1 ] "idle");
  let text = M.to_prometheus t in
  checkb "family present" true (contains text "# TYPE idle histogram");
  checkb "empty buckets" true (contains text "idle_bucket{le=\"+Inf\"} 0\n");
  checkb "zero count" true (contains text "idle_count 0\n");
  checkb "short bound" true (contains text "le=\"0.001\"")

let test_histogram_guards () =
  let t = M.create () in
  checkb "empty buckets" true
    (raises_invalid (fun () -> M.histogram t ~buckets:[] "h"));
  checkb "unsorted" true
    (raises_invalid (fun () -> M.histogram t ~buckets:[ 2.0; 1.0 ] "h"));
  ignore (M.histogram t ~buckets:[ 1.0; 2.0 ] "h");
  checkb "re-register different buckets" true
    (raises_invalid (fun () -> M.histogram t ~buckets:[ 1.0; 3.0 ] "h"));
  let h = M.histogram t ~buckets:[ 1.0; 2.0 ] "h" in
  checkb "non-finite observation" true
    (raises_invalid (fun () -> M.observe h Float.infinity))

let test_metrics_json_matches_text_order () =
  let t = M.create () in
  M.add t ~labels:[ ("q", "b") ] "z_total" 1.0;
  M.add t ~labels:[ ("q", "a") ] "z_total" 2.0;
  M.set_gauge t "a_gauge" 3.0;
  match M.to_json t with
  | J.List entries ->
      let names =
        List.map
          (fun e -> (J.to_str (J.member "name" e), J.member "labels" e))
          entries
      in
      (match names with
      | [ ("a_gauge", _); ("z_total", la); ("z_total", lb) ] ->
          checks "label order" "a" (J.to_str (J.member "q" la));
          checks "label order" "b" (J.to_str (J.member "q" lb))
      | _ -> Alcotest.fail "unexpected JSON entry order")
  | _ -> Alcotest.fail "to_json is not a list"

(* --- tracer: structure and clocks --- *)

(* The same structural check the profiling bench applies to trace files:
   every complete event parses with the required fields and, per tid, spans
   are disjoint or properly contained. *)
let well_nested json =
  let events = J.to_list json in
  let spans = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let ts = J.to_int (J.member "ts" ev) in
      match J.to_str (J.member "ph" ev) with
      | "X" ->
          let tid = J.to_int (J.member "tid" ev) in
          let dur = J.to_int (J.member "dur" ev) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt spans tid) in
          Hashtbl.replace spans tid ((ts, ts + dur) :: prev)
      | "i" -> ()
      | ph -> failwith ("unexpected ph " ^ ph))
    events;
  Hashtbl.fold
    (fun _tid sps ok ->
      let sps =
        List.sort (fun (s1, e1) (s2, e2) -> compare (s1, -e1) (s2, -e2)) sps
      in
      let ok_tid, _ =
        List.fold_left
          (fun (ok, stack) (s, e) ->
            let stack = List.filter (fun (_, pe) -> pe > s) stack in
            let ok =
              ok
              && match stack with
                 | (ps, pe) :: _ -> ps <= s && e <= pe
                 | [] -> true
            in
            (ok, (s, e) :: stack))
          (true, []) sps
      in
      ok && ok_tid)
    spans true

let test_deterministic_ticks () =
  let t = Tr.create ~clock:Obs.Clock.Deterministic () in
  Tr.with_span t "outer" (fun () -> Tr.with_span t "inner" (fun () -> ()));
  (* Each begin/end consumes one tick: outer [0,3] strictly contains
     inner [1,2]. *)
  match J.to_list (Tr.to_json t) with
  | [ outer; inner ] ->
      checks "outer first" "outer" (J.to_str (J.member "name" outer));
      checki "outer ts" 0 (J.to_int (J.member "ts" outer));
      checki "outer dur" 3 (J.to_int (J.member "dur" outer));
      checki "inner ts" 1 (J.to_int (J.member "ts" inner));
      checki "inner dur" 1 (J.to_int (J.member "dur" inner))
  | _ -> Alcotest.fail "expected two events"

let test_span_survives_exception () =
  let t = Tr.create ~clock:Obs.Clock.Deterministic () in
  (try Tr.with_span t "fails" (fun () -> failwith "boom")
   with Failure _ -> ());
  checki "event recorded" 1 (Tr.event_count t);
  checkb "well nested" true (well_nested (Tr.to_json t))

let test_span_end_guard () =
  let t = Tr.create () in
  checkb "no open span" true (raises_invalid (fun () -> Tr.span_end t))

let test_simulated_clock_spans () =
  let sim = Obs.Clock.sim () in
  let t = Tr.create ~clock:(Obs.Clock.Simulated sim) () in
  Tr.with_span t "protocol" (fun () -> Tr.advance t 1.5);
  Tr.advance t 0.25;
  Tr.instant t "after";
  match J.to_list (Tr.to_json t) with
  | [ span; inst ] ->
      checki "span dur is simulated" 1_500_000
        (J.to_int (J.member "dur" span));
      checki "instant at 1.75s" 1_750_000 (J.to_int (J.member "ts" inst));
      checks "instant scope" "t" (J.to_str (J.member "s" inst))
  | _ -> Alcotest.fail "expected two events"

let test_graft_guard_and_splice () =
  let t = Tr.create ~clock:Obs.Clock.Deterministic () in
  let c = Tr.child t ~tid:9 in
  Tr.span_begin c "open";
  checkb "open child refused" true (raises_invalid (fun () -> Tr.graft t c));
  Tr.span_end c;
  Tr.with_span t "parent" (fun () -> ());
  Tr.graft t c;
  (* The child's ticks are spliced after the parent's: [2,3]. *)
  match J.to_list (Tr.to_json t) with
  | [ p; ch ] ->
      checki "parent tid" 0 (J.to_int (J.member "tid" p));
      checki "child tid" 9 (J.to_int (J.member "tid" ch));
      checki "child spliced ts" 2 (J.to_int (J.member "ts" ch))
  | _ -> Alcotest.fail "expected two events"

(* --- qcheck properties --- *)

(* A random span program: a forest of named spans with occasional instants,
   plus a few parallel children grafted in canonical order. *)
type tree = Node of int * tree list

let tree_gen =
  QCheck.Gen.(
    sized_size (int_bound 5) (fix (fun self n ->
        map2
          (fun name kids -> Node (name, kids))
          (int_bound 7)
          (if n <= 0 then return []
           else list_size (int_bound 3) (self (n / 2))))))

let forest_arb =
  QCheck.make
    ~print:(fun f ->
      let rec pp (Node (n, kids)) =
        string_of_int n ^ "(" ^ String.concat "," (List.map pp kids) ^ ")"
      in
      String.concat ";" (List.map pp f))
    QCheck.Gen.(list_size (int_bound 4) tree_gen)

let replay forest =
  let t = Tr.create ~clock:Obs.Clock.Deterministic () in
  let rec walk tr (Node (name, kids)) =
    Tr.with_span tr
      ~args:[ ("n", J.Int name) ]
      (Printf.sprintf "s%d" name)
      (fun () ->
        if name mod 3 = 0 then Tr.instant tr "tick";
        List.iter (walk tr) kids)
  in
  List.iteri
    (fun i root ->
      if i mod 2 = 0 then walk t root
      else begin
        (* Route odd roots through a grafted child, like a parallel stage. *)
        let c = Tr.child t ~tid:(i + 1) in
        walk c root;
        Tr.graft t c
      end)
    forest;
  t

let prop_deterministic_canonical_bytes =
  QCheck.Test.make ~name:"identical deterministic runs give identical bytes"
    ~count:60 forest_arb (fun forest ->
      String.equal (Tr.to_string (replay forest)) (Tr.to_string (replay forest)))

let prop_span_trees_well_nested =
  QCheck.Test.make ~name:"replayed span forests serialize well-nested"
    ~count:60 forest_arb (fun forest -> well_nested (Tr.to_json (replay forest)))

let prop_histogram_buckets_partition =
  QCheck.Test.make ~name:"histogram buckets partition the observations"
    ~count:100
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 6) (float_bound_exclusive 100.0))
           (list_size (int_bound 20) (float_bound_exclusive 200.0))))
    (fun (bounds, observations) ->
      let bounds = List.sort_uniq compare (List.map (fun b -> b +. 0.001) bounds) in
      let t = M.create () in
      let h = M.histogram t ~buckets:bounds "p" in
      List.iter (M.observe h) observations;
      let text = M.to_prometheus t in
      let n = List.length observations in
      contains text (Printf.sprintf "p_bucket{le=\"+Inf\"} %d\n" n)
      && contains text (Printf.sprintf "p_count %d\n" n))

(* --- metrics: JSON round-trip, quantiles, snapshot store --- *)

let checkf = Alcotest.check (Alcotest.float 1e-9)

let tmp_dir name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "arb-test-obs-%s-%d" name (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

let sample_registry () =
  let t = M.create () in
  M.add t ~help:"requests" "req_total" 3.0;
  M.add t ~labels:[ ("code", "500") ] "req_total" 1.0;
  M.set_gauge t "depth" 4.5;
  List.iter
    (fun v -> M.observe_in t ~buckets:[ 0.1; 1.0; 10.0 ] "lat_seconds" v)
    [ 0.05; 0.5; 0.7; 5.0; 50.0 ];
  t

let test_json_round_trip () =
  let t = sample_registry () in
  match M.of_json (M.to_json t) with
  | Error m -> Alcotest.fail ("of_json: " ^ m)
  | Ok t' ->
      (* Canonical exposition must survive the trip (help strings are not
         part of the JSON form, so compare the series lines only). *)
      let series reg =
        List.filter
          (fun l -> l <> "" && l.[0] <> '#')
          (String.split_on_char '\n' (M.to_prometheus reg))
      in
      Alcotest.(check (list string))
        "series survive the JSON round-trip" (series t) (series t')

let test_save_load_json () =
  let dir = tmp_dir "json" in
  let path = Filename.concat dir "metrics.json" in
  let t = sample_registry () in
  M.save_json t path;
  let t' = M.load_json path in
  checkf "counter survives"
    (Option.get (M.value_at t ~labels:[ ("code", "500") ] "req_total"))
    (Option.get (M.value_at t' ~labels:[ ("code", "500") ] "req_total"));
  checkf "histogram quantile survives"
    (Option.get (M.histogram_quantile t "lat_seconds" 0.5))
    (Option.get (M.histogram_quantile t' "lat_seconds" 0.5))

let test_malformed_load_demotes () =
  let dir = tmp_dir "demote" in
  let path = Filename.concat dir "bad.json" in
  let oc = open_out path in
  output_string oc "{not json";
  close_out oc;
  let t = M.load_json path in
  (* Demoted to an empty registry carrying only the demotion counter. *)
  checkf "malformed counter"
    (Option.get
       (M.value_at t
          ~labels:[ ("reason", "malformed") ]
          "arb_metrics_malformed_loads_total"))
    1.0;
  let t2 = M.load_json (Filename.concat dir "missing.json") in
  checkf "unreadable counter"
    (Option.get
       (M.value_at t2
          ~labels:[ ("reason", "unreadable") ]
          "arb_metrics_malformed_loads_total"))
    1.0

let test_histogram_quantile_edges () =
  let t = M.create () in
  (* No histogram yet. *)
  checkb "absent histogram" true (M.histogram_quantile t "h" 0.5 = None);
  List.iter
    (fun v -> M.observe_in t ~buckets:[ 1.0; 10.0 ] "h" v)
    [ 0.2; 0.4; 2.0; 100.0 ];
  (* Rank 1-2 of 4 land in the first bucket: interpolate inside [0, 1]. *)
  checkf "p25 underflow bucket" 0.5 (Option.get (M.histogram_quantile t "h" 0.25));
  (* Rank 4 lands in +Inf: clamp to the highest finite bound. *)
  checkf "p100 overflow clamps" 10.0 (Option.get (M.histogram_quantile t "h" 1.0));
  checkf "p0 uses rank 1" 0.5 (Option.get (M.histogram_quantile t "h" 0.0));
  checkb "q out of range raises" true
    (raises_invalid (fun () -> M.histogram_quantile t "h" 1.5));
  checkb "non-finite q raises" true
    (raises_invalid (fun () -> M.histogram_quantile t "h" Float.nan));
  (* All observations overflow: still clamps, never NaN/inf. *)
  let t2 = M.create () in
  M.observe_in t2 ~buckets:[ 1.0; 10.0 ] "h" 99.0;
  checkf "all-overflow clamps" 10.0 (Option.get (M.histogram_quantile t2 "h" 0.5));
  (* Zero observations. *)
  let t3 = M.create () in
  ignore (M.histogram t3 ~buckets:[ 1.0 ] "h");
  checkb "empty histogram" true (M.histogram_quantile t3 "h" 0.5 = None)

let test_snapshot_round_trip () =
  let dir = tmp_dir "snap" in
  let t = sample_registry () in
  Obs.Snapshot.append ~dir ~tag:"a" t;
  M.add t "req_total" 1.0;
  Obs.Snapshot.append ~dir ~tag:"b" t;
  let snaps, malformed = Obs.Snapshot.load ~dir in
  checki "two snapshots" 2 (List.length snaps);
  checki "no malformed lines" 0 malformed;
  (match snaps with
  | [ a; b ] ->
      checks "first tag" "a" a.Obs.Snapshot.tag;
      checks "second tag" "b" b.Obs.Snapshot.tag;
      checkb "sequence increases" true (a.Obs.Snapshot.seq < b.Obs.Snapshot.seq);
      let ra = Obs.Snapshot.registry a and rb = Obs.Snapshot.registry b in
      checkf "first snapshot value" 3.0 (Option.get (M.value_at ra "req_total"));
      checkf "second snapshot value" 4.0 (Option.get (M.value_at rb "req_total"))
  | _ -> Alcotest.fail "wrong snapshot count");
  (* A malformed line is skipped and counted, never fatal. *)
  let oc =
    open_out_gen [ Open_append ] 0o644 (Obs.Snapshot.file ~dir)
  in
  output_string oc "{torn write\n";
  close_out oc;
  let snaps', malformed' = Obs.Snapshot.load ~dir in
  checki "snapshots survive" 2 (List.length snaps');
  checki "malformed line counted" 1 malformed'

let test_snapshot_missing_store () =
  let dir = tmp_dir "snap-empty" in
  let snaps, malformed = Obs.Snapshot.load ~dir in
  checki "no snapshots" 0 (List.length snaps);
  checki "no malformed" 0 malformed

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter registration idempotent" `Quick
            test_counter_idempotent;
          Alcotest.test_case "labels canonicalized" `Quick
            test_label_canonicalization;
          Alcotest.test_case "counter guards" `Quick test_counter_guards;
          Alcotest.test_case "histogram under/overflow + boundary" `Quick
            test_histogram_edges;
          Alcotest.test_case "histogram with zero observations" `Quick
            test_histogram_zero_observations;
          Alcotest.test_case "histogram guards" `Quick test_histogram_guards;
          Alcotest.test_case "JSON mirrors canonical text order" `Quick
            test_metrics_json_matches_text_order;
          Alcotest.test_case "JSON round-trip" `Quick test_json_round_trip;
          Alcotest.test_case "save_json/load_json" `Quick test_save_load_json;
          Alcotest.test_case "malformed load demotes + counter" `Quick
            test_malformed_load_demotes;
          Alcotest.test_case "histogram quantile edges" `Quick
            test_histogram_quantile_edges;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "append/load round-trip + malformed skip" `Quick
            test_snapshot_round_trip;
          Alcotest.test_case "missing store loads empty" `Quick
            test_snapshot_missing_store;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "deterministic ticks" `Quick
            test_deterministic_ticks;
          Alcotest.test_case "span closes on exception" `Quick
            test_span_survives_exception;
          Alcotest.test_case "span_end guard" `Quick test_span_end_guard;
          Alcotest.test_case "simulated clock drives spans" `Quick
            test_simulated_clock_spans;
          Alcotest.test_case "graft guard + deterministic splice" `Quick
            test_graft_guard_and_splice;
        ] );
      ( "properties",
        [
          qtest prop_deterministic_canonical_bytes;
          qtest prop_span_trees_well_nested;
          qtest prop_histogram_buckets_partition;
        ] );
    ]
