(* Integration tests through the public Arboretum facade: the full
   plan-then-execute flow a library user sees. *)

module A = Arboretum
module L = Arb_lang
module P = Arb_planner

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let simple_query ?(epsilon = 100.0) ?(cols = 8) () =
  A.query_of_source ~name:"itest"
    ~source:"counts = sum(db); winner = em(counts); output(winner);"
    ~row:(A.one_hot cols) ~epsilon ()

let test_query_of_source_parses () =
  let q = simple_query () in
  checkb "uses em" true q.Arb_queries.Registry.uses_em;
  checki "categories" 8 q.Arb_queries.Registry.categories

let test_query_of_source_rejects_syntax () =
  checkb "parse error surfaces as Rejected" true
    (try
       ignore
         (A.query_of_source ~name:"bad" ~source:"x = (1 + ;" ~row:(A.one_hot 2)
            ~epsilon:1.0 ());
       false
     with A.Rejected _ -> true)

let test_plan_and_explain () =
  let q = simple_query () in
  let p = A.plan ~n:10_000_000 q in
  let text = A.explain p in
  checkb "explain mentions the plan" true (String.length text > 200);
  checkb "plan has vignettes" true
    (List.length p.A.plan.P.Plan.vignettes >= 5);
  checkb "metrics populated" true (p.A.metrics.P.Cost_model.agg_time > 0.0)

let test_plan_rejects_leaky_query () =
  let q =
    A.query_of_source ~name:"leak" ~source:"a = sum(db); output(a[0]);"
      ~row:(A.one_hot 4) ~epsilon:1.0 ()
  in
  checkb "leaky query rejected at plan time" true
    (try
       ignore (A.plan ~n:1000 q);
       false
     with A.Rejected _ -> true)

let test_plan_rejects_infeasible_limits () =
  let q = simple_query () in
  let limits =
    { P.Constraints.no_limits with P.Constraints.max_part_max_bytes = Some 1.0 }
  in
  checkb "infeasible limits rejected" true
    (try
       ignore (A.plan ~limits ~n:1_000_000 q);
       false
     with A.Rejected _ -> true)

let test_full_flow () =
  let q = simple_query () in
  let db = A.synthesize_database ~seed:3L ~skew:1.5 q ~n:96 in
  let planned = A.plan ~limits:P.Constraints.no_limits ~n:96 q in
  let config =
    {
      Arb_runtime.Exec.default_config with
      Arb_runtime.Exec.budget = Arb_dp.Budget.create ~epsilon:1000.0 ~delta:0.01;
    }
  in
  let report = A.run ~config ~db planned in
  let reference = A.reference_outputs ~db q in
  checki "one output" 1 (List.length report.Arb_runtime.Exec.outputs);
  (* At epsilon = 100 both must return the true mode. *)
  checkb "distributed = reference" true
    (List.map L.Interp.value_to_string report.Arb_runtime.Exec.outputs
    = List.map L.Interp.value_to_string reference);
  checkb "strings render" true (A.outputs_to_strings report <> [])

let test_builtin_queries_accessible () =
  List.iter
    (fun name ->
      let q = A.builtin_query name in
      checkb (name ^ " nonempty categories") true (q.Arb_queries.Registry.categories >= 1))
    Arb_queries.Registry.names;
  checkb "unknown raises Not_found" true
    (try
       ignore (A.builtin_query "nope");
       false
     with Not_found -> true);
  let custom = A.builtin_query ~categories:64 "top1" in
  checki "category override" 64 custom.Arb_queries.Registry.categories

let test_certify_through_facade () =
  let q = simple_query () in
  let r = A.certify q ~n:1000 in
  checkb "certified" true r.L.Certify.certified;
  checkb "epsilon recorded" true
    (r.L.Certify.cost.Arb_dp.Budget.epsilon > 0.0)

let test_bounded_row_flow () =
  (* A Bounded-row query through the whole pipeline. *)
  let q =
    A.query_of_source ~name:"avg"
      ~source:"s = sum(db); noisy = laplace(s[0]); output(noisy);"
      ~row:(A.bounded ~width:2 ~lo:0 ~hi:10) ~epsilon:10_000.0 ()
  in
  let db = Array.init 64 (fun i -> [| i mod 11; (i * 3) mod 11 |]) in
  let planned = A.plan ~limits:P.Constraints.no_limits ~n:64 q in
  let config =
    {
      Arb_runtime.Exec.default_config with
      Arb_runtime.Exec.budget = Arb_dp.Budget.create ~epsilon:100_000.0 ~delta:0.1;
    }
  in
  let report = A.run ~config ~db planned in
  let want = Array.fold_left (fun acc row -> acc + row.(0)) 0 db in
  match report.Arb_runtime.Exec.outputs with
  | [ v ] ->
      checkb "noisy sum close to the truth" true
        (Float.abs (L.Interp.as_float v -. float_of_int want) < 2.0)
  | _ -> Alcotest.fail "expected one output"

(* ---------------- query registry ---------------- *)

let test_registry_table2 () =
  checki "ten queries" 10 (List.length Arb_queries.Registry.names);
  List.iter
    (fun name ->
      let q = Arb_queries.Registry.paper_instance name in
      checkb (name ^ " concise") true
        (let lines = L.Ast.count_lines q.Arb_queries.Registry.program in
         lines >= 3 && lines <= 40))
    Arb_queries.Registry.names;
  (* §7.1 settings *)
  checki "bayes C" 115 (Arb_queries.Registry.paper_instance "bayes").Arb_queries.Registry.categories;
  checki "top1 C" 32768 (Arb_queries.Registry.paper_instance "top1").Arb_queries.Registry.categories;
  checki "hypotest C" 1 (Arb_queries.Registry.paper_instance "hypotest").Arb_queries.Registry.categories

let test_registry_database_shapes () =
  let rng = Arb_util.Rng.create 33L in
  (* one-hot rows *)
  let q = Arb_queries.Registry.test_instance "top1" in
  let db = Arb_queries.Registry.random_database rng q ~n:50 () in
  Array.iter
    (fun row ->
      checki "one-hot row sums to 1" 1 (Array.fold_left ( + ) 0 row))
    db;
  (* kmedians: (indicator, value) pairs with exactly one active cluster *)
  let km = Arb_queries.Registry.test_instance "kmedians" in
  let db = Arb_queries.Registry.random_database rng km ~n:50 () in
  Array.iter
    (fun row ->
      let clusters = Array.length row / 2 in
      let active = ref 0 in
      for c = 0 to clusters - 1 do
        if row.(2 * c) = 1 then incr active
      done;
      checki "one active cluster" 1 !active)
    db

let test_registry_skew_shifts_mode () =
  let rng = Arb_util.Rng.create 34L in
  let q = Arb_queries.Registry.test_instance "top1" in
  let db = Arb_queries.Registry.random_database rng q ~n:400 ~skew:2.0 () in
  let counts = Array.make 16 0 in
  Array.iter (fun row -> Array.iteri (fun j v -> counts.(j) <- counts.(j) + v) row) db;
  checkb "category 0 dominates under heavy skew" true
    (counts.(0) > counts.(8) && counts.(0) > 400 / 4)

(* ---------------- pipeline fuzzing ---------------- *)

(* Generate small certified-by-construction queries and push each through
   the whole stack: certify -> extract -> plan -> execute vs reference. *)
type fuzz_spec = {
  cols : int;
  scan : [ `None | `Prefix | `Suffix ];
  affine : (int * int) option; (* scale, offset *)
  mech : [ `Em | `Lap_scalar of int | `Lap_vector ];
}

let fuzz_source spec =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "h = sum(db);
";
  let v = ref "h" in
  (match spec.scan with
  | `None -> ()
  | `Prefix ->
      Buffer.add_string buf "p = prefixSums(h);
";
      v := "p"
  | `Suffix ->
      Buffer.add_string buf "p = suffixSums(h);
";
      v := "p");
  (match spec.affine with
  | None -> ()
  | Some (k, c) ->
      Buffer.add_string buf
        (Printf.sprintf "for i = 0 to C - 1 do t[i] = %d * %s[i] + %d; endfor
" k !v c);
      v := "t");
  (match spec.mech with
  | `Em -> Buffer.add_string buf (Printf.sprintf "w = em(%s); output(w);
" !v)
  | `Lap_scalar idx ->
      Buffer.add_string buf
        (Printf.sprintf "x = laplace(%s[%d]); output(x);
" !v idx)
  | `Lap_vector ->
      Buffer.add_string buf
        (Printf.sprintf
           "x = laplace(%s);
for i = 0 to C - 1 do output(x[i]); endfor
" !v));
  Buffer.contents buf

let gen_fuzz_spec : fuzz_spec QCheck.Gen.t =
  let open QCheck.Gen in
  let* cols = int_range 2 10 in
  let* scan = oneofl [ `None; `Prefix; `Suffix ] in
  let* affine =
    oneof
      [ return None;
        map2 (fun k c -> Some (k, c)) (int_range 1 5) (int_range 0 9) ]
  in
  let* mech =
    oneof
      [ return `Em;
        map (fun i -> `Lap_scalar i) (int_range 0 (cols - 1));
        return `Lap_vector ]
  in
  return { cols; scan; affine; mech }

let fuzz_query spec =
  A.query_of_source ~name:"fuzz" ~source:(fuzz_source spec)
    ~row:(A.one_hot spec.cols) ~epsilon:1000.0 ()

let prop_fuzz_certify_and_plan =
  QCheck.Test.make ~name:"random queries certify, extract and plan" ~count:60
    (QCheck.make ~print:(fun s -> fuzz_source s) gen_fuzz_spec)
    (fun spec ->
      let q = fuzz_query spec in
      let cert = A.certify q ~n:1_000_000 in
      cert.L.Certify.certified
      && (match Arb_planner.Extract.ops q.Arb_queries.Registry.program ~n:1_000_000 with
         | _ :: _ -> true
         | [] -> false)
      &&
      let r =
        Arb_planner.Search.plan ~limits:P.Constraints.no_limits ~query:q
          ~n:1_000_000 ()
      in
      r.Arb_planner.Search.plan <> None)

let prop_fuzz_execute_matches_reference =
  QCheck.Test.make ~name:"random queries execute like the reference" ~count:12
    (QCheck.make ~print:(fun s -> fuzz_source s) gen_fuzz_spec)
    (fun spec ->
      let q = fuzz_query spec in
      let db = A.synthesize_database ~seed:9L ~skew:1.4 q ~n:64 in
      let planned = A.plan ~limits:P.Constraints.no_limits ~n:64 q in
      let config =
        {
          Arb_runtime.Exec.default_config with
          Arb_runtime.Exec.budget = Arb_dp.Budget.create ~epsilon:1.0e7 ~delta:0.9;
        }
      in
      let report = A.run ~config ~db planned in
      let reference = A.reference_outputs ~db q in
      List.length report.Arb_runtime.Exec.outputs = List.length reference
      &&
      (* At epsilon = 1000 the em winner is deterministic; laplace outputs
         only need to be near the reference. *)
      List.for_all2
        (fun got want ->
          match (got, want) with
          | L.Interp.V_int a, L.Interp.V_int b -> a = b
          | got, want ->
              Float.abs (L.Interp.as_float got -. L.Interp.as_float want) < 1.0)
        report.Arb_runtime.Exec.outputs reference)

(* ---------------- differential: MPC runtime vs cleartext reference ----------------

   Every registry query, executed end to end through the typed Exec.run
   wrapper, must agree with the cleartext reference interpreter up to DP
   noise: at epsilon 1000 integer outputs (em winners, medians, decisions)
   are deterministic and compared exactly; noisy numeric outputs must land
   within a small tolerance; secrecy-of-the-sample draws its own hidden
   window on each side, so only the magnitude is comparable.

   EM category picks (top1/topK) are compared by the picked category's
   count rather than its index: when two categories tie, either is a
   correct winner and the tiny eps-1000 noise breaks the tie by RNG
   stream, which the runtime and the reference do not share. *)

let exact_int_queries = [ "gap"; "median"; "hypotest"; "auction" ]
let count_equiv_queries = [ "top1"; "topK" ]

let column_count db j = Array.fold_left (fun acc row -> acc + row.(j)) 0 db

let differential_tolerance name ~n =
  if name = "secrecy" then float_of_int n
  else if name = "kmedians" then 20.0
    (* kmedians outputs laplace(tot)/laplace(cnt): Laplace noise on the
       ~13-member cluster count divides the ~120-range center, so a single
       heavy-tailed draw moves the ratio by |out/cnt| ~ 9 per unit of
       denominator noise even at eps 1000. At eps 1e9 the runtime matches
       the exact ratios to the printed digit at every seed (the decrypted
       sums are exact); the spread here is entirely the mechanism's, so the
       tolerance covers its observed tail rather than the additive-noise
       queries' 2.0. *)
  else 2.0

let test_differential_all_registry_queries () =
  List.iter
    (fun name ->
      let q = Arb_queries.Registry.test_instance ~epsilon:1000.0 name in
      let db =
        Arb_queries.Registry.random_database (Arb_util.Rng.create 77L) q ~n:64
          ~skew:2.0 ()
      in
      let n = Array.length db in
      let planned =
        Arb_planner.Search.plan ~limits:P.Constraints.no_limits ~query:q ~n ()
      in
      let plan =
        match planned.Arb_planner.Search.plan with
        | Some p -> p
        | None -> Alcotest.fail (name ^ ": no plan")
      in
      let config =
        {
          Arb_runtime.Exec.default_config with
          Arb_runtime.Exec.seed = 5L;
          budget = Arb_dp.Budget.create ~epsilon:1.0e7 ~delta:0.9;
        }
      in
      match Arb_runtime.Exec.run config ~query:q ~plan ~db with
      | Error f ->
          Alcotest.fail
            (Format.asprintf "%s failed closed unexpectedly: %a" name
               Arb_runtime.Exec.pp_failure f)
      | Ok report ->
          let reference = A.reference_outputs ~db q in
          checki (name ^ ": output arity") (List.length reference)
            (List.length report.Arb_runtime.Exec.outputs);
          let tol = differential_tolerance name ~n in
          let idx = ref 0 in
          List.iter2
            (fun got want ->
              let i = !idx in
              incr idx;
              match (got, want) with
              | L.Interp.V_int a, L.Interp.V_int b
                when List.mem name exact_int_queries ->
                  checki (Printf.sprintf "%s[%d]: exact int" name i) b a
              | L.Interp.V_int a, L.Interp.V_int b
                when List.mem name count_equiv_queries ->
                  checki
                    (Printf.sprintf "%s[%d]: count-equivalent pick" name i)
                    (column_count db b) (column_count db a)
              | got, want ->
                  let g = L.Interp.as_float got and w = L.Interp.as_float want in
                  checkb
                    (Printf.sprintf "%s[%d]: %.3f within %.1f of %.3f" name i g
                       tol w)
                    true
                    (Float.abs (g -. w) <= tol))
            report.Arb_runtime.Exec.outputs reference)
    Arb_queries.Registry.names

let () =
  Alcotest.run "integration"
    [
      ( "facade",
        [
          Alcotest.test_case "query_of_source" `Quick test_query_of_source_parses;
          Alcotest.test_case "syntax errors rejected" `Quick
            test_query_of_source_rejects_syntax;
          Alcotest.test_case "plan + explain" `Quick test_plan_and_explain;
          Alcotest.test_case "leaky query rejected" `Quick test_plan_rejects_leaky_query;
          Alcotest.test_case "infeasible limits rejected" `Quick
            test_plan_rejects_infeasible_limits;
          Alcotest.test_case "builtin queries" `Quick test_builtin_queries_accessible;
          Alcotest.test_case "certify" `Quick test_certify_through_facade;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "full flow (one-hot)" `Slow test_full_flow;
          Alcotest.test_case "full flow (bounded rows)" `Slow test_bounded_row_flow;
        ] );
      ( "registry",
        [
          Alcotest.test_case "table 2 settings" `Quick test_registry_table2;
          Alcotest.test_case "database shapes" `Quick test_registry_database_shapes;
          Alcotest.test_case "skew" `Quick test_registry_skew_shifts_mode;
        ] );
      ( "differential",
        [
          Alcotest.test_case "runtime matches reference on every registry query"
            `Slow test_differential_all_registry_queries;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_fuzz_certify_and_plan;
          QCheck_alcotest.to_alcotest prop_fuzz_execute_matches_reference;
        ] );
    ]
