(* Tests for the continual-analytics subsystem: recurring-spec validation,
   session scheduling (skip cadence, re-validation vs forced re-plan),
   sliding-window refusal and refund-driven recovery, mechanism-state
   carryover fidelity (no-carry differential, carried convergence), and
   multi-epoch byte-identity across worker counts. *)

module S = Arb_service
module E = Arb_continual.Engine
module Ms = Arb_continual.Mstate
module B = Arb_dp.Budget
module P = Arb_planner
module J = Arb_util.Json

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let goal = P.Constraints.Min_part_exp_time

let sub ?categories ?(repeat = 1) ?every ?window ~epsilon query =
  { S.Workload.query; epsilon; categories; goal; repeat; every; window;
    tolerance = None }

let win ?compose ~epochs ~epsilon ~delta () =
  {
    S.Workload.w_epochs = epochs;
    w_budget = B.create ~epsilon ~delta;
    w_compose = compose;
  }

let fresh ?(epsilon = 1.0e6) ?(devices = 24) () =
  let svc =
    S.Service.create
      ~budget:(B.create ~epsilon ~delta:0.5)
      ~devices ~seed:11 ()
  in
  (svc, E.create ~service:svc ())

let register engine ?name s =
  match E.register engine ?name ~carry_state:true s with
  | Ok n -> n
  | Error m -> Alcotest.fail ("register: " ^ m)

let view engine name =
  match E.session engine name with
  | Some v -> v
  | None -> Alcotest.fail ("no session view for " ^ name)

let planned_of r =
  match r.E.er_outcome with E.Ran { planned; _ } -> Some planned | _ -> None

let outputs_of r =
  match r.E.er_outcome with E.Ran { outputs; _ } -> outputs | _ -> []

(* ---------------- recurring-spec validation ---------------- *)

let test_validate_recurring () =
  let expect_err what s pred =
    match S.Workload.validate_recurring s with
    | Ok () -> Alcotest.fail (what ^ ": accepted a malformed recurring spec")
    | Error e ->
        checkb (what ^ " typed error") true (pred e);
        checkb
          (what ^ " message names the query")
          true
          (let m = S.Workload.recurring_error_message e in
           String.length m > 0
           &&
           let rec find i =
             i + 4 <= String.length m && (String.sub m i 4 = "top1" || find (i + 1))
           in
           find 0)
  in
  checkb "one-shot ok" true
    (S.Workload.validate_recurring (sub ~epsilon:0.5 "top1") = Ok ());
  checkb "recurring ok" true
    (S.Workload.validate_recurring
       (sub ~epsilon:0.5 ~every:2
          ~window:(win ~epochs:4 ~epsilon:1.0 ~delta:1e-6 ~compose:4 ())
          "top1")
    = Ok ());
  expect_err "every <= 0"
    (sub ~epsilon:0.5 ~every:0 "top1")
    (function S.Workload.Bad_every _ -> true | _ -> false);
  expect_err "window epochs < 1"
    (sub ~epsilon:0.5 ~every:1
       ~window:(win ~epochs:0 ~epsilon:1.0 ~delta:0.0 ())
       "top1")
    (function S.Workload.Bad_window_epochs _ -> true | _ -> false);
  expect_err "compose < 1"
    (sub ~epsilon:0.5 ~every:1
       ~window:(win ~epochs:4 ~epsilon:1.0 ~delta:0.0 ~compose:0 ())
       "top1")
    (function S.Workload.Bad_compose _ -> true | _ -> false);
  expect_err "window below composition horizon"
    (sub ~epsilon:0.5 ~every:1
       ~window:(win ~epochs:2 ~epsilon:1.0 ~delta:0.0 ~compose:5 ())
       "top1")
    (function S.Workload.Window_below_compose _ -> true | _ -> false);
  expect_err "window without every"
    (sub ~epsilon:0.5 ~window:(win ~epochs:4 ~epsilon:1.0 ~delta:0.0 ()) "top1")
    (function S.Workload.Window_without_every _ -> true | _ -> false);
  expect_err "recurring repeat"
    (sub ~epsilon:0.5 ~every:1 ~repeat:3 "top1")
    (function S.Workload.Recurring_repeat _ -> true | _ -> false)

let test_workload_json_rejects_malformed () =
  (* A workload file with a malformed recurring spec must fail at load
     time with the typed message, not mid-serve. *)
  let wl every =
    J.Obj
      [
        ("formatVersion", J.Int 1);
        ( "queries",
          J.List
            [
              J.Obj
                [
                  ("query", J.String "top1");
                  ("epsilon", J.Float 0.5);
                  ("every", J.Int every);
                ];
            ] );
      ]
  in
  (match S.Workload.of_json (wl 0) with
  | Ok _ -> Alcotest.fail "every=0 accepted"
  | Error m -> checkb "message mentions every" true
      (let rec find i =
         i + 5 <= String.length m && (String.sub m i 5 = "every" || find (i + 1))
       in
       find 0));
  match S.Workload.of_json (wl 1) with
  | Ok w ->
      checki "recurring entry kept out of expand" 0
        (List.length (S.Workload.expand w));
      checki "recurring entry listed" 1 (List.length (S.Workload.recurring w))
  | Error m -> Alcotest.fail m

(* ---------------- registration ---------------- *)

let test_register () =
  let _svc, eng = fresh () in
  (match E.register eng ~carry_state:false (sub ~epsilon:0.5 "top1") with
  | Ok _ -> Alcotest.fail "non-recurring submission registered"
  | Error m -> checkb "explains every" true (String.length m > 0));
  let a = register eng (sub ~epsilon:0.5 ~every:1 "top1") in
  checks "defaults to the query name" "top1" a;
  let b = register eng (sub ~epsilon:0.5 ~every:1 "top1") in
  checks "name collision auto-suffixes" "top1#2" b;
  (match E.register eng ~name:"top1" ~carry_state:true (sub ~epsilon:0.5 ~every:1 "top1") with
  | Ok _ -> Alcotest.fail "explicit duplicate name accepted"
  | Error m -> checkb "duplicate error" true (String.length m > 0));
  checki "both sessions listed" 2 (List.length (E.sessions eng))

(* ---------------- scheduling: cadence, revalidate, re-plan ---------------- *)

let test_cadence_and_revalidation () =
  let _svc, eng = fresh () in
  let a = register eng (sub ~epsilon:0.5 ~every:1 "top1") in
  let m = register eng (sub ~epsilon:0.4 ~every:2 "median") in
  let epochs = E.run_epochs eng 4 in
  checki "four epochs of records" 4 (List.length epochs);
  List.iteri
    (fun i records ->
      let e = i + 1 in
      checki "record per session per epoch" 2 (List.length records);
      let rm = List.find (fun r -> r.E.er_session = m) records in
      if (e - 1) mod 2 = 0 then
        checkb "median runs on its cadence" true (planned_of rm <> None)
      else
        checkb "median skips off-cadence epochs" true
          (rm.E.er_outcome = E.Skipped))
    epochs;
  let va = view eng a in
  checki "one cold plan" 1 va.E.v_cold;
  checki "revalidations ever after" 3 va.E.v_revalidations;
  checki "no replans" 0 va.E.v_replans;
  checki "every epoch ran" 4 va.E.v_runs;
  let vm = view eng m in
  checki "median runs at half cadence" 2 vm.E.v_runs;
  checki "median cold once" 1 vm.E.v_cold;
  checki "median revalidates once" 1 vm.E.v_revalidations

let test_drift_forces_one_replan () =
  let _svc, eng = fresh () in
  let a = register eng (sub ~epsilon:0.5 ~every:1 "top1") in
  ignore (E.run_epochs eng 2);
  E.observe_population eng 48 (* 24 -> 48: 100% > the 20% threshold *);
  let e3 = E.tick eng in
  (match List.filter_map planned_of e3 with
  | [ E.Replanned reason ] ->
      checkb "reason names population" true
        (String.length reason >= 10 && String.sub reason 0 10 = "population")
  | _ -> Alcotest.fail "population drift did not force exactly one re-plan");
  let e4 = E.tick eng in
  checkb "fingerprint refreshed: next epoch revalidates" true
    (List.filter_map planned_of e4 = [ E.Revalidated ]);
  E.set_calibration eng "calib-v1";
  let e5 = E.tick eng in
  (match List.filter_map planned_of e5 with
  | [ E.Replanned reason ] ->
      checkb "reason names calibration" true
        (String.length reason >= 11 && String.sub reason 0 11 = "calibration")
  | _ -> Alcotest.fail "calibration drift did not force exactly one re-plan");
  checki "exactly two replans total" 2 (view eng a).E.v_replans

let test_tolerance_drift_forces_one_replan () =
  let _svc, eng = fresh () in
  let a = register eng (sub ~epsilon:0.5 ~every:1 "top1") in
  ignore (E.run_epochs eng 2);
  E.set_tolerance eng a (Some 0.1);
  let e3 = E.tick eng in
  (match List.filter_map planned_of e3 with
  | [ E.Replanned reason ] ->
      checkb "reason names tolerance" true
        (String.length reason >= 9 && String.sub reason 0 9 = "tolerance")
  | _ -> Alcotest.fail "tolerance change did not force exactly one re-plan");
  let e4 = E.tick eng in
  checkb "fingerprint refreshed: next epoch revalidates" true
    (List.filter_map planned_of e4 = [ E.Revalidated ]);
  (* Dropping back to exact is a drift too — exactly one more re-plan. *)
  E.set_tolerance eng a None;
  (match List.filter_map planned_of (E.tick eng) with
  | [ E.Replanned reason ] ->
      checkb "reason names tolerance" true
        (String.length reason >= 9 && String.sub reason 0 9 = "tolerance")
  | _ -> Alcotest.fail "clearing the tolerance did not force a re-plan");
  checki "exactly two replans total" 2 (view eng a).E.v_replans;
  Alcotest.check_raises "invalid tolerance rejected"
    (Invalid_argument "Engine.set_tolerance: tolerance must be in (0, 1]")
    (fun () -> E.set_tolerance eng a (Some 2.0))

(* ---------------- window refusal and recovery ---------------- *)

let test_window_refusal_and_recovery () =
  let svc, eng = fresh () in
  let c =
    register eng
      (sub ~epsilon:0.5 ~every:1
         ~window:(win ~epochs:3 ~epsilon:1.0 ~delta:1e-5 ~compose:3 ())
         "top1")
  in
  ignore (E.run_epochs eng 2);
  checki "two executed epochs" 2 (view eng c).E.v_runs;
  let budget_before = S.Service.budget_left svc in
  let spent_before =
    match (view eng c).E.v_window with
    | Some w -> B.Window.spent w
    | None -> Alcotest.fail "windowed session lost its window"
  in
  (match E.tick eng with
  | [ { E.er_outcome = E.Window_refused reason; _ } ] ->
      checkb "refusal explains the exhaustion" true
        (let rec find i =
           i + 7 <= String.length reason
           && (String.sub reason i 7 = "expires" || find (i + 1))
         in
         find 0)
  | _ -> Alcotest.fail "exhausted window did not refuse epoch 3");
  checkb "service budget byte-identical across the refusal" true
    (B.equal budget_before (S.Service.budget_left svc));
  (match (view eng c).E.v_window with
  | Some w ->
      checkb "window spend byte-identical across the refusal" true
        (B.equal spent_before (B.Window.spent w))
  | None -> Alcotest.fail "window vanished");
  (* Epoch 4: the epoch-1 charge expires; the refund re-opens the window. *)
  (match E.tick eng with
  | [ { E.er_outcome = E.Ran { status = "executed"; _ }; er_refunded; _ } ] -> (
      match (view eng c).E.v_last_cost with
      | Some cost ->
          checkb "recovery refund is exactly the expired charge" true
            (B.equal er_refunded cost)
      | None -> Alcotest.fail "no recorded cost")
  | _ -> Alcotest.fail "expiry refund did not revive the session");
  checki "exactly one refusal recorded" 1 (view eng c).E.v_window_refusals

(* ---------------- state carryover ---------------- *)

let test_no_carry_differential () =
  (* With no carried state, the engine's epoch-k output must equal the
     k-th submission of a from-scratch one-shot run on the same service
     parameters: the continual layer adds scheduling, not arithmetic. *)
  let k = 3 in
  let _svc, eng = fresh () in
  let n =
    match
      E.register eng ~carry_state:false (sub ~epsilon:0.5 ~every:1 "top1")
    with
    | Ok n -> n
    | Error m -> Alcotest.fail m
  in
  let epochs = E.run_epochs eng k in
  let continual_outputs =
    List.map
      (fun records ->
        outputs_of (List.find (fun r -> r.E.er_session = n) records))
      epochs
  in
  let scratch, _ = fresh () in
  let scratch_outputs =
    List.init k (fun _ ->
        ignore (S.Service.submit scratch (sub ~epsilon:0.5 "top1"));
        match S.Service.drain scratch with
        | [ { S.Lifecycle.status = S.Lifecycle.Executed { outputs }; _ } ] ->
            outputs
        | _ -> Alcotest.fail "scratch run did not execute")
  in
  List.iteri
    (fun i (c, s) ->
      checkb (Printf.sprintf "epoch %d output matches from-scratch" (i + 1))
        true (c = s))
    (List.combine continual_outputs scratch_outputs);
  (* No-carry estimates are the epoch's raw outputs, not an aggregate. *)
  List.iteri
    (fun i records ->
      let r = List.find (fun r -> r.E.er_session = n) records in
      checkb
        (Printf.sprintf "epoch %d estimate = raw outputs" (i + 1))
        true
        (r.E.er_estimate = List.nth scratch_outputs i))
    epochs

let test_carry_convergence () =
  (* Carried heavy-hitter state converges on the modal output across
     epochs, and the serialized state round-trips every epoch. *)
  let k = 5 in
  let _svc, eng = fresh () in
  let n = register eng (sub ~epsilon:0.5 ~every:1 "top1") in
  let epochs = E.run_epochs eng k in
  let per_epoch =
    List.map
      (fun records ->
        outputs_of (List.find (fun r -> r.E.er_session = n) records))
      epochs
  in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun o ->
      Hashtbl.replace counts o (1 + Option.value (Hashtbl.find_opt counts o) ~default:0))
    per_epoch;
  let modal, _ =
    Hashtbl.fold
      (fun o c (bo, bc) -> if c > bc || (c = bc && o < bo) then (o, c) else (bo, bc))
      counts ([ "" ], 0)
  in
  let v = view eng n in
  checkb "carried estimate is the modal epoch output" true
    (v.E.v_estimate = modal);
  (* The carried artifact is serialized JSON that decodes to a state whose
     epoch counter saw every run. *)
  (match Ms.of_json v.E.v_state with
  | Ok st ->
      checki "state folded every epoch" k (Ms.epochs st);
      checkb "state estimate agrees with the view" true
        (Ms.estimate st = Some modal)
  | Error m -> Alcotest.fail ("carried state does not deserialize: " ^ m))

let test_mstate_roundtrip () =
  let st = Ms.create Ms.Winners in
  let st = Ms.update st ~outputs:[ "a"; "b" ] in
  let st = Ms.update st ~outputs:[ "a"; "b" ] in
  let st = Ms.update st ~outputs:[ "c" ] in
  checkb "winners estimate is modal" true (Ms.estimate st = Some [ "a"; "b" ]);
  (match Ms.of_json (Ms.to_json st) with
  | Ok st' -> checkb "winners roundtrip" true (Ms.equal st st')
  | Error m -> Alcotest.fail m);
  let sk = Ms.create ~capacity:4 Ms.Sketch in
  let sk =
    List.fold_left
      (fun acc v -> Ms.update acc ~outputs:[ v ])
      sk
      [ "5"; "1"; "9"; "3"; "7"; "2"; "8" ]
  in
  (match Ms.of_json (Ms.to_json sk) with
  | Ok sk' -> checkb "sketch roundtrip" true (Ms.equal sk sk')
  | Error m -> Alcotest.fail m);
  (match Ms.estimate sk with
  | Some [ v ] ->
      checkb "sketch estimate is a held sample" true
        (List.mem v [ "1"; "2"; "3"; "5"; "7"; "8"; "9" ])
  | _ -> Alcotest.fail "sketch estimate missing");
  checkb "malformed state rejected" true
    (match Ms.of_json (J.Obj [ ("kind", J.String "nope") ]) with
    | Error _ -> true
    | Ok _ -> false)

(* ---------------- multi-epoch determinism ---------------- *)

let test_worker_count_invisible_across_epochs () =
  let run workers =
    let svc, eng = fresh () in
    ignore
      (register eng ~name:"a"
         (sub ~epsilon:0.5 ~every:1
            ~window:(win ~epochs:4 ~epsilon:4.0 ~delta:1e-4 ())
            "top1"));
    ignore (register eng ~name:"b" (sub ~epsilon:0.4 ~every:2 "median"));
    let epochs = E.run_epochs ~workers eng 4 in
    ( String.concat "\n" (List.map E.records_string epochs),
      S.Lifecycle.records_to_string ~timings:false (S.Service.history svc),
      S.Service.budget_left svc )
  in
  let c1, l1, b1 = run 1 in
  List.iter
    (fun workers ->
      let c, l, b = run workers in
      checkb
        (Printf.sprintf "continual records byte-identical at workers=%d" workers)
        true (c = c1);
      checkb
        (Printf.sprintf "lifecycle records byte-identical at workers=%d" workers)
        true (l = l1);
      checkb (Printf.sprintf "budget identical at workers=%d" workers) true
        (B.equal b b1))
    [ 2; 4 ]

(* ---------------- views and JSON surface ---------------- *)

let test_session_json_surface () =
  let _svc, eng = fresh () in
  let n =
    register eng
      (sub ~epsilon:0.5 ~every:1
         ~window:(win ~epochs:3 ~epsilon:2.0 ~delta:1e-5 ~compose:3 ())
         "top1")
  in
  ignore (E.run_epochs eng 2);
  let contains s needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    nl = 0 || go 0
  in
  let summary = J.to_string (E.session_summary_json (view eng n)) in
  List.iter
    (fun field -> checkb ("summary has " ^ field) true (contains summary field))
    [ "\"name\""; "\"runs\""; "\"revalidations\""; "\"window\"";
      "\"composed\""; "\"projectedComposed\"" ];
  let detail = J.to_string (E.session_json (view eng n)) in
  checkb "detail has history" true (contains detail "\"history\"");
  let budget = J.to_string (E.budget_json eng) in
  List.iter
    (fun field -> checkb ("budget has " ^ field) true (contains budget field))
    [ "\"epsilon\""; "\"delta\""; "\"epoch\""; "\"windows\"" ];
  let index = J.to_string (E.to_json eng) in
  checkb "index has sessions" true (contains index "\"sessions\"");
  (* records_string is wall-clock-free canonical bytes *)
  let records = List.concat (E.run_epochs eng 1) in
  checks "records_string reproduces" (E.records_string records)
    (E.records_string records)

let () =
  Alcotest.run "continual"
    [
      ( "workload",
        [
          Alcotest.test_case "typed recurring validation" `Quick
            test_validate_recurring;
          Alcotest.test_case "malformed specs rejected at load" `Quick
            test_workload_json_rejects_malformed;
        ] );
      ( "engine",
        [
          Alcotest.test_case "registration" `Quick test_register;
          Alcotest.test_case "cadence and revalidation" `Quick
            test_cadence_and_revalidation;
          Alcotest.test_case "tolerance drift forces exactly one re-plan"
            `Quick test_tolerance_drift_forces_one_replan;
          Alcotest.test_case "drift forces exactly one re-plan" `Quick
            test_drift_forces_one_replan;
          Alcotest.test_case "window refusal and recovery" `Quick
            test_window_refusal_and_recovery;
        ] );
      ( "state",
        [
          Alcotest.test_case "no-carry differential" `Quick
            test_no_carry_differential;
          Alcotest.test_case "carried convergence" `Quick test_carry_convergence;
          Alcotest.test_case "mechanism-state roundtrip" `Quick
            test_mstate_roundtrip;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "multi-epoch worker byte-identity" `Quick
            test_worker_count_invisible_across_epochs;
        ] );
      ( "surface",
        [
          Alcotest.test_case "session json surface" `Quick
            test_session_json_surface;
        ] );
    ]
