(* Unit and property tests for the arb_util foundation. *)

module Rng = Arb_util.Rng
module Fx = Arb_util.Fixed
module I = Arb_util.Interval
module S = Arb_util.Stats

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let qtest = QCheck_alcotest.to_alcotest

(* ---------------- Rng ---------------- *)

let test_rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  checkb "different seeds differ" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_split_independent () =
  let a = Rng.create 9L in
  let b = Rng.split a in
  checkb "split streams differ" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_copy () =
  let a = Rng.create 5L in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.next_int64 a) (Rng.next_int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 7L in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    checkb "0 <= v < 7" true (v >= 0 && v < 7)
  done;
  for _ = 1 to 10_000 do
    let v = Rng.int_in rng (-3) 4 in
    checkb "-3 <= v <= 4" true (v >= -3 && v <= 4)
  done

let test_rng_int_rejects_bad () =
  let rng = Rng.create 7L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "lo > hi" (Invalid_argument "Rng.int_in: lo > hi") (fun () ->
      ignore (Rng.int_in rng 3 2))

let test_rng_uniform01 () =
  let rng = Rng.create 11L in
  let sum = ref 0.0 in
  let n = 50_000 in
  for _ = 1 to n do
    let u = Rng.uniform01 rng in
    checkb "in (0,1)" true (u > 0.0 && u < 1.0);
    sum := !sum +. u
  done;
  let mean = !sum /. float_of_int n in
  checkb "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_rng_laplace_stats () =
  let rng = Rng.create 13L in
  let n = 100_000 in
  let samples = Array.init n (fun _ -> Rng.laplace rng ~scale:2.0) in
  let mean = S.mean samples and var = S.variance samples in
  checkb "laplace mean ~ 0" true (Float.abs mean < 0.05);
  (* Var of Laplace(b) = 2 b^2 = 8. *)
  checkb "laplace variance ~ 8" true (Float.abs (var -. 8.0) < 0.4)

let test_rng_gumbel_stats () =
  let rng = Rng.create 17L in
  let n = 100_000 in
  let samples = Array.init n (fun _ -> Rng.gumbel rng ~scale:1.0) in
  (* Mean of Gumbel(0,1) is the Euler-Mascheroni constant. *)
  checkb "gumbel mean ~ 0.5772" true (Float.abs (S.mean samples -. 0.5772) < 0.02);
  (* Var = pi^2/6 ~ 1.645 *)
  checkb "gumbel var ~ 1.645" true (Float.abs (S.variance samples -. 1.645) < 0.08)

let test_rng_exponential_stats () =
  let rng = Rng.create 19L in
  let samples = Array.init 50_000 (fun _ -> Rng.exponential rng ~rate:4.0) in
  checkb "exp mean ~ 1/4" true (Float.abs (S.mean samples -. 0.25) < 0.01)

let test_rng_gaussian_stats () =
  let rng = Rng.create 23L in
  let samples = Array.init 50_000 (fun _ -> Rng.gaussian rng ~sigma:3.0) in
  checkb "gaussian mean ~ 0" true (Float.abs (S.mean samples) < 0.06);
  checkb "gaussian var ~ 9" true (Float.abs (S.variance samples -. 9.0) < 0.4)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 29L in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "shuffle is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_sample_without_replacement () =
  let rng = Rng.create 31L in
  let s = Rng.sample_without_replacement rng 10 20 in
  checki "ten draws" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  let distinct = Array.length (Array.of_list (List.sort_uniq compare (Array.to_list s))) in
  checki "all distinct" 10 distinct;
  Array.iter (fun v -> checkb "in range" true (v >= 0 && v < 20)) s

let prop_rng_int_uniformish =
  QCheck.Test.make ~name:"Rng.int covers all residues" ~count:20
    QCheck.(int_range 2 17)
    (fun bound ->
      let rng = Rng.create (Int64.of_int (bound * 7919)) in
      let seen = Array.make bound false in
      for _ = 1 to bound * 200 do
        seen.(Rng.int rng bound) <- true
      done;
      Array.for_all Fun.id seen)

(* ---------------- Fixed ---------------- *)

let fx = Alcotest.testable (fun fmt v -> Fx.pp fmt v) Fx.equal

let test_fixed_basics () =
  check fx "1 + 1 = 2" (Fx.of_int 2) (Fx.add Fx.one Fx.one);
  check fx "3 * 4 = 12" (Fx.of_int 12) (Fx.mul (Fx.of_int 3) (Fx.of_int 4));
  check fx "7 / 2 = 3.5" (Fx.of_float 3.5) (Fx.div (Fx.of_int 7) (Fx.of_int 2));
  checki "to_int truncates" 3 (Fx.to_int (Fx.of_float 3.9));
  checki "to_int truncates negative toward zero" (-3) (Fx.to_int (Fx.of_float (-3.9)))

let test_fixed_exp2 () =
  List.iter
    (fun x ->
      let got = Fx.to_float (Fx.exp2 (Fx.of_float x)) in
      let want = 2.0 ** x in
      checkb
        (Printf.sprintf "2^%g ~ %g (got %g)" x want got)
        true
        (Float.abs (got -. want) /. want < 1e-3))
    [ 0.0; 0.5; 1.0; 3.25; 7.9; -1.0; -3.5; 10.0 ]

let test_fixed_exp2_saturation () =
  checkb "huge exponent saturates" true
    (Fx.to_float (Fx.exp2 (Fx.of_int 40)) > 1e8);
  check fx "very negative exponent is zero" Fx.zero (Fx.exp2 (Fx.of_int (-30)))

let test_fixed_log2 () =
  List.iter
    (fun x ->
      let got = Fx.to_float (Fx.log2 (Fx.of_float x)) in
      checkb (Printf.sprintf "log2 %g" x) true (Float.abs (got -. Float.log2 x) < 1e-3))
    [ 1.0; 2.0; 10.0; 0.25; 1000.0 ];
  Alcotest.check_raises "log2 0 rejected"
    (Invalid_argument "Fixed.log2: non-positive input") (fun () ->
      ignore (Fx.log2 Fx.zero))

let test_fixed_division_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Fx.div Fx.one Fx.zero))

let prop_fixed_mul_commutes =
  QCheck.Test.make ~name:"Fixed.mul commutes" ~count:500
    QCheck.(pair (float_range (-1000.0) 1000.0) (float_range (-1000.0) 1000.0))
    (fun (a, b) ->
      let a = Fx.of_float a and b = Fx.of_float b in
      Fx.equal (Fx.mul a b) (Fx.mul b a))

let prop_fixed_mul_neg_symmetric =
  QCheck.Test.make ~name:"Fixed.mul symmetric under negation" ~count:500
    QCheck.(pair (float_range (-1000.0) 1000.0) (float_range (-1000.0) 1000.0))
    (fun (a, b) ->
      let a = Fx.of_float a and b = Fx.of_float b in
      Fx.equal (Fx.neg (Fx.mul a b)) (Fx.mul (Fx.neg a) b))

let prop_fixed_add_roundtrip =
  QCheck.Test.make ~name:"Fixed add/sub roundtrip" ~count:500
    QCheck.(pair (float_range (-1e6) 1e6) (float_range (-1e6) 1e6))
    (fun (a, b) ->
      let a = Fx.of_float a and b = Fx.of_float b in
      Fx.equal a (Fx.sub (Fx.add a b) b))

let prop_fixed_float_roundtrip =
  QCheck.Test.make ~name:"Fixed.of_float error < quantum" ~count:500
    QCheck.(float_range (-1e6) 1e6)
    (fun f -> Float.abs (Fx.to_float (Fx.of_float f) -. f) <= 1.0 /. 65536.0)

(* ---------------- Interval ---------------- *)

let prop_interval_sound op_name abstract concrete =
  QCheck.Test.make ~name:("Interval." ^ op_name ^ " is sound") ~count:500
    QCheck.(
      quad (int_range (-1000) 1000) (int_range 0 100) (int_range (-1000) 1000)
        (int_range 0 100))
    (fun (lo1, w1, lo2, w2) ->
      let i1 = I.make lo1 (lo1 + w1) and i2 = I.make lo2 (lo2 + w2) in
      let result = abstract i1 i2 in
      (* Sample concrete points and check containment. *)
      List.for_all
        (fun (a, b) -> I.contains result (concrete a b))
        [
          (lo1, lo2); (lo1 + w1, lo2 + w2); (lo1, lo2 + w2); (lo1 + w1, lo2);
          (lo1 + (w1 / 2), lo2 + (w2 / 2));
        ])

let prop_interval_add = prop_interval_sound "add" I.add ( + )
let prop_interval_sub = prop_interval_sound "sub" I.sub ( - )
let prop_interval_mul = prop_interval_sound "mul" I.mul ( * )

let prop_interval_div =
  QCheck.Test.make ~name:"Interval.div is sound (nonzero divisor)" ~count:500
    QCheck.(
      quad (int_range (-1000) 1000) (int_range 0 100) (int_range 1 100)
        (int_range 0 50))
    (fun (lo1, w1, lo2, w2) ->
      let i1 = I.make lo1 (lo1 + w1) and i2 = I.make lo2 (lo2 + w2) in
      let result = I.div i1 i2 in
      List.for_all
        (fun (a, b) -> I.contains result (a / b))
        [ (lo1, lo2); (lo1 + w1, lo2 + w2); (lo1, lo2 + w2); (lo1 + w1, lo2) ])

let test_interval_clip () =
  let i = I.make (-10) 50 in
  check
    (Alcotest.testable I.pp I.equal)
    "clip" (I.make 0 20)
    (I.clip i ~lo:0 ~hi:20)

let test_interval_bits () =
  checki "bits for [0,1]" 2 (I.bits_needed I.bool_range);
  checki "bits for [0,255]" 9 (I.bits_needed (I.make 0 255));
  checki "bits for [-128,127]" 9 (I.bits_needed (I.make (-128) 127))

let test_interval_saturation () =
  (* Products beyond the native range must saturate, not wrap. *)
  let big = I.make 0 (1 lsl 59) in
  let sq = I.mul big big in
  checkb "saturated upper bound positive" true (sq.I.hi > 0);
  checkb "lower bound sane" true (sq.I.lo >= 0)

let test_interval_rejects () =
  Alcotest.check_raises "make lo>hi" (Invalid_argument "Interval.make: lo > hi")
    (fun () -> ignore (I.make 3 2))

(* ---------------- Stats ---------------- *)

let test_lgamma () =
  (* lgamma(n) = ln((n-1)!) *)
  checkb "lgamma 5 = ln 24" true (Float.abs (S.lgamma 5.0 -. Float.log 24.0) < 1e-9);
  checkb "lgamma 1 = 0" true (Float.abs (S.lgamma 1.0) < 1e-12);
  checkb "lgamma 0.5 = ln sqrt(pi)" true
    (Float.abs (S.lgamma 0.5 -. Float.log (sqrt Float.pi)) < 1e-9)

let test_log_comb () =
  checkb "C(10,3) = 120" true (Float.abs (exp (S.log_comb 10 3) -. 120.0) < 1e-6);
  checkb "C(n,0) = 1" true (S.log_comb 17 0 = 0.0);
  checkb "C(n,k>n) = 0 prob" true (S.log_comb 5 6 = neg_infinity)

let test_binom_cdf_vs_bruteforce () =
  let n = 20 and p = 0.3 in
  (* brute force *)
  let pmf k =
    exp (S.log_comb n k) *. (p ** float_of_int k)
    *. ((1.0 -. p) ** float_of_int (n - k))
  in
  let rec cdf k acc = if k < 0 then acc else cdf (k - 1) (acc +. pmf k) in
  List.iter
    (fun k ->
      let want = cdf k 0.0 in
      let got = exp (S.log_binom_cdf ~n ~k ~p) in
      checkb (Printf.sprintf "cdf k=%d" k) true (Float.abs (got -. want) < 1e-9))
    [ 0; 3; 7; 12; 19 ]

let test_binom_tail_vs_bruteforce () =
  let n = 15 and p = 0.2 in
  let pmf k =
    exp (S.log_comb n k) *. (p ** float_of_int k)
    *. ((1.0 -. p) ** float_of_int (n - k))
  in
  List.iter
    (fun k ->
      let want = ref 0.0 in
      for i = k to n do
        want := !want +. pmf i
      done;
      checkb
        (Printf.sprintf "tail k=%d" k)
        true
        (Float.abs (exp (S.log_binom_tail ~n ~k ~p) -. !want) < 1e-12))
    [ 0; 1; 5; 10; 15 ];
  checkb "k > n impossible" true (S.log_binom_tail ~n ~k:16 ~p = neg_infinity);
  checkb "k <= 0 certain" true (S.log_binom_tail ~n ~k:0 ~p = 0.0)

let test_log1mexp () =
  List.iter
    (fun x ->
      let want = Float.log (1.0 -. exp x) in
      checkb (Printf.sprintf "log1mexp %g" x) true
        (Float.abs (S.log1mexp x -. want) < 1e-9))
    [ -0.01; -0.5; -1.0; -10.0; -30.0 ]

let test_percentile () =
  let a = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  checkf "median" 3.0 (S.percentile a 50.0);
  checkf "min" 1.0 (S.percentile a 0.0);
  checkf "max" 5.0 (S.percentile a 100.0)

(* ---------------- Json ---------------- *)

module J = Arb_util.Json

let gen_json : J.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [ return J.Null; map (fun b -> J.Bool b) bool;
                map (fun i -> J.Int i) small_signed_int;
                map (fun f -> J.Float (Float.round (f *. 1000.0) /. 1000.0))
                  (float_range (-1000.0) 1000.0);
                map (fun s -> J.String s) (string_size ~gen:printable (int_range 0 12)) ]
          else
            oneof
              [ map (fun l -> J.List l) (list_size (int_range 0 4) (self (n / 2)));
                map
                  (fun kvs ->
                    (* distinct keys for order-stable roundtrips *)
                    J.Obj (List.mapi (fun i (_, v) -> (Printf.sprintf "k%d" i, v)) kvs))
                  (list_size (int_range 0 4) (pair unit (self (n / 2)))) ])
        (min n 4))

let prop_json_roundtrip =
  QCheck.Test.make ~name:"Json parse (render v) = v" ~count:300
    (QCheck.make ~print:(fun v -> J.to_string v) gen_json)
    (fun v ->
      J.of_string (J.to_string v) = v
      && J.of_string (J.to_string ~pretty:true v) = v)

let test_json_escapes () =
  let s = J.String "line\nquote\"back\\slash\ttab" in
  check Alcotest.bool "escape roundtrip" true (J.of_string (J.to_string s) = s);
  let ctrl = J.String "\x01\x02" in
  check Alcotest.bool "control chars roundtrip" true
    (J.of_string (J.to_string ctrl) = ctrl)

let test_json_rejects_nonfinite () =
  (* inf/nan have no JSON encoding; rendering them used to emit "inf",
     which of_string (rightly) refuses. *)
  List.iter
    (fun f ->
      check Alcotest.bool (Printf.sprintf "%h raises" f) true
        (try
           ignore (J.to_string (J.Float f));
           false
         with Invalid_argument _ -> true))
    [ Float.infinity; Float.neg_infinity; Float.nan ]

let test_json_parse_errors () =
  List.iter
    (fun src ->
      check Alcotest.bool src true
        (try
           ignore (J.of_string src);
           false
         with J.Parse_error _ -> true))
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let test_json_accessors () =
  let v = J.of_string {|{"a": 1, "b": [true, 2.5], "c": "x"}|} in
  checki "member int" 1 (J.to_int (J.member "a" v));
  check Alcotest.bool "nested bool" true (J.to_bool (List.hd (J.to_list (J.member "b" v))));
  check Alcotest.string "member string" "x" (J.to_str (J.member "c" v));
  check Alcotest.bool "missing member raises" true
    (try ignore (J.member "zz" v); false with J.Parse_error _ -> true)

(* ---------------- Units / Table ---------------- *)

let test_units () =
  check Alcotest.string "bytes" "1.5 MB" (Arb_util.Units.bytes_to_string 1.5e6);
  check Alcotest.string "terabytes" "2.0 TB" (Arb_util.Units.bytes_to_string 2.0e12);
  check Alcotest.string "minutes" "2.0 min" (Arb_util.Units.seconds_to_string 120.0);
  check Alcotest.string "hours" "2.0 h" (Arb_util.Units.seconds_to_string 7200.0);
  checkf "core hours" 2.0 (Arb_util.Units.core_hours 7200.0)

let test_table_render () =
  let s =
    Arb_util.Table.render ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "333" ] ]
  in
  checkb "contains padded cell" true
    (String.length s > 0 && String.contains s '|');
  (* short row padded, long ok *)
  checkb "has rule lines" true (String.contains s '+')

let () =
  Alcotest.run "arb_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects" `Quick test_rng_int_rejects_bad;
          Alcotest.test_case "uniform01" `Quick test_rng_uniform01;
          Alcotest.test_case "laplace stats" `Slow test_rng_laplace_stats;
          Alcotest.test_case "gumbel stats" `Slow test_rng_gumbel_stats;
          Alcotest.test_case "exponential stats" `Slow test_rng_exponential_stats;
          Alcotest.test_case "gaussian stats" `Slow test_rng_gaussian_stats;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_rng_sample_without_replacement;
          qtest prop_rng_int_uniformish;
        ] );
      ( "fixed",
        [
          Alcotest.test_case "basics" `Quick test_fixed_basics;
          Alcotest.test_case "exp2" `Quick test_fixed_exp2;
          Alcotest.test_case "exp2 saturation" `Quick test_fixed_exp2_saturation;
          Alcotest.test_case "log2" `Quick test_fixed_log2;
          Alcotest.test_case "division by zero" `Quick test_fixed_division_by_zero;
          qtest prop_fixed_mul_commutes;
          qtest prop_fixed_mul_neg_symmetric;
          qtest prop_fixed_add_roundtrip;
          qtest prop_fixed_float_roundtrip;
        ] );
      ( "interval",
        [
          qtest prop_interval_add;
          qtest prop_interval_sub;
          qtest prop_interval_mul;
          qtest prop_interval_div;
          Alcotest.test_case "clip" `Quick test_interval_clip;
          Alcotest.test_case "bits_needed" `Quick test_interval_bits;
          Alcotest.test_case "saturation" `Quick test_interval_saturation;
          Alcotest.test_case "rejects bad bounds" `Quick test_interval_rejects;
        ] );
      ( "stats",
        [
          Alcotest.test_case "lgamma" `Quick test_lgamma;
          Alcotest.test_case "log_comb" `Quick test_log_comb;
          Alcotest.test_case "binom cdf vs brute force" `Quick
            test_binom_cdf_vs_bruteforce;
          Alcotest.test_case "binom tail vs brute force" `Quick
            test_binom_tail_vs_bruteforce;
          Alcotest.test_case "log1mexp" `Quick test_log1mexp;
          Alcotest.test_case "percentile" `Quick test_percentile;
        ] );
      ( "json",
        [
          qtest prop_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "non-finite floats rejected" `Quick
            test_json_rejects_nonfinite;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "units-table",
        [
          Alcotest.test_case "units" `Quick test_units;
          Alcotest.test_case "table render" `Quick test_table_render;
        ] );
    ]
