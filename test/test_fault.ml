(* Chaos and property tests for the deterministic fault-injection harness.

   The central invariant: a faulted run either produces the same output as
   the clean run with the same seed (faults absorbed), or fails closed with
   a typed error and an intact DP budget. On top of that, qcheck properties
   pin down replayability: the same seed gives byte-identical traces. *)

module R = Arb_runtime
module Q = Arb_queries.Registry
module L = Arb_lang
module P = Arb_planner
module Rng = Arb_util.Rng
module Fault = R.Fault

let qtest = QCheck_alcotest.to_alcotest
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  n = 0 || go 0

let big_budget = Arb_dp.Budget.create ~epsilon:1.0e7 ~delta:0.5

let config ?(seed = 1L) ?(faults = Fault.no_faults) () =
  {
    R.Exec.default_config with
    R.Exec.seed;
    budget = big_budget;
    faults;
  }

(* One planned (query, db, plan) context per query name, shared across
   scenarios. Skew 2.0 keeps argmax margins decisive, so recovery actions
   that shift the session RNG cannot flip an integer winner at the chaos
   suite's huge epsilon. *)
let context =
  let cache = Hashtbl.create 8 in
  fun name ->
    match Hashtbl.find_opt cache name with
    | Some c -> c
    | None ->
        let q = Q.test_instance ~epsilon:1000.0 name in
        let db = Q.random_database (Rng.create 99L) q ~n:64 ~skew:2.0 () in
        let r =
          P.Search.plan ~limits:P.Constraints.no_limits ~query:q
            ~n:(Array.length db) ()
        in
        let plan =
          match r.P.Search.plan with
          | Some p -> p
          | None -> Alcotest.fail ("no plan for " ^ name)
        in
        let c = (q, db, plan) in
        Hashtbl.add cache name c;
        c

let exec_run ?(faults = Fault.no_faults) ~seed name =
  let q, db, plan = context name in
  R.Exec.run (config ~seed ~faults ()) ~query:q ~plan ~db

let clean_report ~seed name =
  match exec_run ~seed name with
  | Ok r -> r
  | Error f ->
      Alcotest.fail
        (Format.asprintf "clean run of %s failed: %a" name R.Exec.pp_failure f)

(* Equality up to DP noise: integers must match exactly (at epsilon 1000
   over a skew-2.0 database the noise cannot flip a count margin); noisy
   fixpoint outputs may differ by the recovery-shifted noise draws. *)
let noise_tol = 1.0

let rec value_close (a : L.Interp.value) (b : L.Interp.value) =
  match (a, b) with
  | L.Interp.V_int x, L.Interp.V_int y -> x = y
  | V_bool x, V_bool y -> x = y
  | V_arr x, V_arr y ->
      Array.length x = Array.length y
      && Array.for_all2 value_close x y
  | _ ->
      Float.abs (L.Interp.as_float a -. L.Interp.as_float b) <= noise_tol

let outputs_close a b =
  List.length a = List.length b && List.for_all2 value_close a b

(* ---------------- the chaos sweep ---------------- *)

let single_fault_specs =
  [
    ("committee_dropout", { Fault.no_faults with Fault.dropout_p = 0.5 });
    ("share_corruption", { Fault.no_faults with Fault.share_corrupt_p = 0.15 });
    ("message_drop", { Fault.no_faults with Fault.message_drop_p = 0.2 });
    ("message_delay", { Fault.no_faults with Fault.message_delay_p = 0.5 });
    ("ciphertext_tamper", { Fault.no_faults with Fault.tamper_p = 0.5 });
    ("audit_failure", { Fault.no_faults with Fault.audit_fail_p = 0.5 });
  ]

let scenario_seeds = [ 2L; 3L; 5L; 7L; 11L; 13L ]

(* Every scenario must satisfy the invariant; returns whether the fault
   plan actually perturbed the run (injected > 0), so the sweep can assert
   it exercised real faults and not 30 clean runs. *)
let check_scenario ~name ~query ~seed spec =
  let clean = clean_report ~seed query in
  match exec_run ~faults:spec ~seed query with
  | Ok r ->
      checkb
        (Printf.sprintf "%s seed %Ld: absorbed faults preserve the output"
           name seed)
        true
        (outputs_close clean.R.Exec.outputs r.R.Exec.outputs);
      checkb
        (Printf.sprintf "%s seed %Ld: absorbed faults leave the budget alone"
           name seed)
        true
        (Arb_dp.Budget.equal clean.R.Exec.budget_left r.R.Exec.budget_left);
      checkb
        (Printf.sprintf "%s seed %Ld: released outputs imply audit ok" name seed)
        true
        (r.R.Exec.audit_ok && r.R.Exec.certificate_ok);
      R.Trace.faults_total r.R.Exec.trace > 0
  | Error f ->
      (* Fail closed: a typed stage, never a raw exception. *)
      checkb
        (Printf.sprintf "%s seed %Ld: failure is typed (%s)" name seed
           f.R.Exec.stage)
        true
        (List.mem f.R.Exec.stage
           [ "certificate"; "audit"; "degraded"; "execute"; "mpc"; "budget" ]);
      true

let test_chaos_single_faults () =
  let scenarios = ref 0 and perturbed = ref 0 in
  List.iter
    (fun (name, spec) ->
      List.iter
        (fun seed ->
          incr scenarios;
          if check_scenario ~name ~query:"top1" ~seed spec then incr perturbed)
        scenario_seeds)
    single_fault_specs;
  checkb "sweep ran at least 30 scenarios" true (!scenarios >= 30);
  checkb
    (Printf.sprintf "most scenarios injected real faults (%d/%d)" !perturbed
       !scenarios)
    true
    (!perturbed * 2 >= !scenarios)

let test_chaos_all_faults_other_queries () =
  List.iter
    (fun query ->
      List.iter
        (fun seed ->
          ignore (check_scenario ~name:("chaos/" ^ query) ~query ~seed Fault.chaos))
        [ 17L; 23L ])
    [ "gap"; "median"; "auction" ]

(* Corruption beyond the robust-decoding radius must abort, never release
   a wrong answer: with 5 parties and threshold 2 the radius is 1, so two
   corrupted parties are uncorrectable. *)
let test_corruption_beyond_radius_fails_closed () =
  let spec =
    { Fault.no_faults with Fault.share_corrupt_p = 1.0; corrupt_parties = 2 }
  in
  match exec_run ~faults:spec ~seed:5L "top1" with
  | Ok _ -> Alcotest.fail "uncorrectable corruption must not release outputs"
  | Error f ->
      checkb "typed mpc/execute failure" true
        (f.R.Exec.stage = "mpc" || f.R.Exec.stage = "execute")

(* Within the radius, every opening self-heals and the cheater shows up in
   the trace. *)
let test_corruption_within_radius_self_heals () =
  let spec =
    { Fault.no_faults with Fault.share_corrupt_p = 1.0; corrupt_parties = 1 }
  in
  let clean = clean_report ~seed:5L "top1" in
  match exec_run ~faults:spec ~seed:5L "top1" with
  | Error f ->
      Alcotest.fail
        (Format.asprintf "radius-1 corruption should be absorbed: %a"
           R.Exec.pp_failure f)
  | Ok r ->
      checkb "output preserved" true
        (outputs_close clean.R.Exec.outputs r.R.Exec.outputs);
      checkb "cheater recorded in the trace" true
        (r.R.Exec.trace.R.Trace.shares_corrected > 0)

let test_tamper_always_detected () =
  let spec = { Fault.no_faults with Fault.tamper_p = 1.0 } in
  List.iter
    (fun seed ->
      match exec_run ~faults:spec ~seed "top1" with
      | Ok _ -> Alcotest.fail "tampered aggregation must not release outputs"
      | Error f -> checks "audit catches the tamper" "audit" f.R.Exec.stage)
    [ 1L; 2L; 3L ]

let test_all_auditors_down_degrades () =
  let spec = { Fault.no_faults with Fault.audit_fail_p = 1.0 } in
  match exec_run ~faults:spec ~seed:1L "top1" with
  | Ok _ -> Alcotest.fail "no auditors means no release"
  | Error f -> checks "degraded stage" "degraded" f.R.Exec.stage

let test_forced_dropout_at_round () =
  (* dropout_at forces the k-th committee pick to fail even with zero
     probability everywhere else; one reassignment absorbs it. *)
  let spec = { Fault.no_faults with Fault.dropout_at = Some 0 } in
  let clean = clean_report ~seed:4L "top1" in
  match exec_run ~faults:spec ~seed:4L "top1" with
  | Error f ->
      Alcotest.fail
        (Format.asprintf "single forced dropout should be absorbed: %a"
           R.Exec.pp_failure f)
  | Ok r ->
      checkb "committee was reassigned" true
        (r.R.Exec.trace.R.Trace.committees_reassigned >= 1);
      checkb "recovery recorded" true
        (List.assoc "committee_dropout" r.R.Exec.trace.R.Trace.fault_recoveries
         >= 1);
      checkb "output preserved" true
        (outputs_close clean.R.Exec.outputs r.R.Exec.outputs)

let test_backoff_exhaustion_fails_closed () =
  (* A zero backoff budget turns the first retry-requiring fault into a
     typed failure instead of a loop. *)
  let spec =
    {
      Fault.no_faults with
      Fault.message_drop_p = 0.8;
      backoff_budget_s = 0.0;
    }
  in
  match exec_run ~faults:spec ~seed:3L "top1" with
  | Ok r ->
      (* Possible but vanishingly unlikely: every message got through on
         the first try. Accept only if genuinely nothing was lost. *)
      checki "no lost uploads if Ok" 0 r.R.Exec.trace.R.Trace.lost_uploads
  | Error f -> checks "degraded stage" "degraded" f.R.Exec.stage

(* ---------------- chaos inside sampled cohorts ---------------- *)

(* Sharded runs confine faults to the materialized (sampled) cohorts — the
   streamed remainder is exact arithmetic with nothing to drop or tamper.
   The chaos invariant is unchanged: absorb and release the clean answer,
   or fail closed with a typed stage; and the extrapolated accounting must
   still cover every device after recovery. *)

let cohort_sharding = R.Exec.Sharded { cohort_size = 16; sampled_cohorts = 2 }

let exec_run_sharded ?(faults = Fault.no_faults) ?(byz = 0.0) ~seed name =
  let q, db, plan = context name in
  R.Exec.run
    {
      (config ~seed ~faults ()) with
      R.Exec.sharding = cohort_sharding;
      byzantine_fraction = byz;
    }
    ~query:q ~plan ~db

let test_cohort_chaos_absorbed_or_typed () =
  let n = 64 in
  let perturbed = ref 0 in
  List.iter
    (fun (name, spec) ->
      List.iter
        (fun seed ->
          let clean =
            match exec_run_sharded ~seed "top1" with
            | Ok r -> r
            | Error f ->
                Alcotest.fail
                  (Format.asprintf "clean sharded run failed: %a"
                     R.Exec.pp_failure f)
          in
          match exec_run_sharded ~faults:spec ~seed "top1" with
          | Ok r ->
              checkb
                (Printf.sprintf "cohort %s seed %Ld: absorbed => clean output"
                   name seed)
                true
                (outputs_close clean.R.Exec.outputs r.R.Exec.outputs);
              checki
                (Printf.sprintf
                   "cohort %s seed %Ld: accounting covers every device after \
                    recovery"
                   name seed)
                n
                (r.R.Exec.accepted_inputs + r.R.Exec.rejected_inputs);
              checkb
                (Printf.sprintf "cohort %s seed %Ld: release implies audit ok"
                   name seed)
                true
                (r.R.Exec.audit_ok && r.R.Exec.certificate_ok);
              if R.Trace.faults_total r.R.Exec.trace > 0 then incr perturbed
          | Error f ->
              checkb
                (Printf.sprintf "cohort %s seed %Ld: failure is typed (%s)" name
                   seed f.R.Exec.stage)
                true
                (List.mem f.R.Exec.stage
                   [ "certificate"; "audit"; "degraded"; "execute"; "mpc"; "budget" ]);
              incr perturbed)
        [ 2L; 7L; 13L ])
    single_fault_specs;
  checkb "cohort chaos actually perturbed runs" true (!perturbed >= 6)

let test_cohort_chaos_byzantine_extrapolation () =
  (* Byzantine devices live in sampled and unsampled cohorts alike (the
     flags are per-device PRF draws): under simultaneous upload faults the
     sharded run must still reject exactly the devices the full run
     rejects, with the unsampled share coming from extrapolation. *)
  let spec = { Fault.no_faults with Fault.message_drop_p = 0.2 } in
  List.iter
    (fun seed ->
      let q, db, plan = context "top1" in
      let full =
        R.Exec.run
          { (config ~seed ~faults:spec ()) with R.Exec.byzantine_fraction = 0.25 }
          ~query:q ~plan ~db
      in
      match (full, exec_run_sharded ~faults:spec ~byz:0.25 ~seed "top1") with
      | Ok f, Ok s ->
          checkb
            (Printf.sprintf "seed %Ld: byzantine devices were rejected" seed)
            true (s.R.Exec.rejected_inputs > 0);
          checki
            (Printf.sprintf "seed %Ld: sharded rejects what full rejects" seed)
            f.R.Exec.rejected_inputs s.R.Exec.rejected_inputs;
          checki
            (Printf.sprintf "seed %Ld: sharded accepts what full accepts" seed)
            f.R.Exec.accepted_inputs s.R.Exec.accepted_inputs
      | Error ff, Error sf ->
          checks
            (Printf.sprintf "seed %Ld: both modes fail at the same stage" seed)
            ff.R.Exec.stage sf.R.Exec.stage
      | Ok _, Error f | Error f, Ok _ ->
          (* Fault schedules legitimately differ between modes (fewer
             transmits in sharded mode), so one mode may absorb what the
             other cannot — but a failure must still be typed. *)
          checkb
            (Printf.sprintf "seed %Ld: divergent result is typed (%s)" seed
               f.R.Exec.stage)
            true
            (List.mem f.R.Exec.stage
               [ "certificate"; "audit"; "degraded"; "execute"; "mpc"; "budget" ]))
    [ 3L; 11L ]

let prop_cohort_chaos_deterministic =
  QCheck.Test.make ~name:"sharded chaos replays byte-identically" ~count:6
    QCheck.(int_range 1 10_000)
    (fun s ->
      let seed = Int64.of_int s in
      let go () = exec_run_sharded ~faults:Fault.chaos ~seed "top1" in
      match (go (), go ()) with
      | Ok a, Ok b ->
          a.R.Exec.outputs = b.R.Exec.outputs
          && String.equal
               (Arb_util.Json.to_string (R.Trace.to_json a.R.Exec.trace))
               (Arb_util.Json.to_string (R.Trace.to_json b.R.Exec.trace))
          && a.R.Exec.audit_root = b.R.Exec.audit_root
      | Error fa, Error fb ->
          fa.R.Exec.stage = fb.R.Exec.stage && fa.R.Exec.reason = fb.R.Exec.reason
      | _ -> false)

(* ---------------- determinism properties ---------------- *)

let trace_string (r : R.Exec.report) =
  Arb_util.Json.to_string (R.Trace.to_json r.R.Exec.trace)

let run_twice_identical ~faults seed =
  let a = exec_run ~faults ~seed "top1" in
  let b = exec_run ~faults ~seed "top1" in
  match (a, b) with
  | Ok ra, Ok rb ->
      ra.R.Exec.outputs = rb.R.Exec.outputs
      && String.equal (trace_string ra) (trace_string rb)
      && ra.R.Exec.audit_root = rb.R.Exec.audit_root
  | Error fa, Error fb ->
      fa.R.Exec.stage = fb.R.Exec.stage && fa.R.Exec.reason = fb.R.Exec.reason
  | _ -> false

let prop_same_seed_same_trace =
  QCheck.Test.make ~name:"same seed => byte-identical trace (chaos spec)"
    ~count:8
    QCheck.(int_range 1 10_000)
    (fun s -> run_twice_identical ~faults:Fault.chaos (Int64.of_int s))

let prop_same_seed_same_trace_clean =
  QCheck.Test.make ~name:"same seed => byte-identical trace (no faults)"
    ~count:5
    QCheck.(int_range 1 10_000)
    (fun s -> run_twice_identical ~faults:Fault.no_faults (Int64.of_int s))

let prop_injector_schedule_deterministic =
  (* Two injectors with the same seed agree on every decision, regardless
     of which kinds the runtime happens to ask about in between. *)
  QCheck.Test.make ~name:"fault schedule depends only on (seed, spec, site)"
    ~count:200
    QCheck.(pair (int_range 0 10_000) (small_list (int_range 0 5)))
    (fun (seed, kinds) ->
      let kinds = List.map (fun i -> List.nth Fault.all_kinds i) kinds in
      let a = Fault.create ~seed:(Int64.of_int seed) Fault.chaos in
      let b = Fault.create ~seed:(Int64.of_int seed) Fault.chaos in
      List.for_all (fun k -> Fault.fires a k = Fault.fires b k) kinds)

let prop_backoff_respects_budget =
  QCheck.Test.make ~name:"backoff never exceeds its budget" ~count:200
    QCheck.(pair (int_range 0 1000) (float_range 0.0 2.0))
    (fun (seed, budget) ->
      let spec = { Fault.chaos with Fault.backoff_budget_s = budget } in
      let t = Fault.create ~seed:(Int64.of_int seed) spec in
      let total = ref 0.0 in
      let exhausted = ref false in
      for attempt = 0 to 19 do
        match Fault.backoff t ~attempt with
        | Some d -> total := !total +. d
        | None -> exhausted := true
      done;
      !total <= budget +. 1e-9
      && Float.abs (Fault.backoff_spent t -. !total) <= 1e-9)

let prop_transmit_deterministic =
  QCheck.Test.make ~name:"Net.transmit replays exactly from the fault seed"
    ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let mk () =
        let inj = Fault.create ~seed:(Int64.of_int seed) Fault.chaos in
        let link =
          R.Net.lossy R.Net.lan
            ~drop:(fun () -> Fault.fires inj Fault.Message_drop)
            ~delay:(fun () ->
              if Fault.fires inj Fault.Message_delay then 0.25 else 0.0)
        in
        List.init 20 (fun _ ->
            R.Net.transmit link ~max_attempts:4 ~backoff:(fun a ->
                Fault.backoff inj ~attempt:a))
      in
      mk () = mk ())

(* ---------------- session lifecycle under faults ---------------- *)

let session_db () =
  let q = Q.test_instance ~epsilon:2.0 "top1" in
  (q, Q.random_database (Rng.create 42L) q ~n:64 ~skew:2.0 ())

let test_session_faulted_query_leaves_state_intact () =
  let q, db = session_db () in
  let cfg = config ~faults:{ Fault.no_faults with Fault.tamper_p = 1.0 } () in
  let budget = Arb_dp.Budget.create ~epsilon:10.0 ~delta:1e-3 in
  let session = R.Session.create ~config:cfg ~budget ~db () in
  (match R.Session.run session q with
  | Ok _ -> Alcotest.fail "tampered session query must fail closed"
  | Error m -> checkb "error mentions the audit stage" true (contains m "audit"));
  checkb "budget intact after the failure" true
    (Arb_dp.Budget.equal budget (R.Session.budget_left session));
  checki "no query committed" 0 (R.Session.queries_run session);
  checkb "empty chain still verifies" true (R.Session.chain_verifies session)

let test_session_recovers_after_failure () =
  (* Same session object: a run that fails closed must not poison the
     chain — the next (recoverable) query succeeds and charges normally. *)
  let q, db = session_db () in
  let cfg =
    config ~faults:{ Fault.no_faults with Fault.dropout_at = Some 0 } ()
  in
  let budget = Arb_dp.Budget.create ~epsilon:10.0 ~delta:1e-3 in
  let session = R.Session.create ~config:cfg ~budget ~db () in
  (match R.Session.run session q with
  | Ok qr ->
      checkb "forced dropout absorbed inside the session" true
        (qr.R.Session.report.R.Exec.trace.R.Trace.committees_reassigned >= 1)
  | Error m -> Alcotest.fail m);
  checki "one query committed" 1 (R.Session.queries_run session);
  checkb "budget was charged" true
    ((R.Session.budget_left session).Arb_dp.Budget.epsilon < 10.0 -. 1.9);
  checkb "chain verifies" true (R.Session.chain_verifies session)

let test_session_budget_depletion_refuses_next () =
  let q, db = session_db () in
  let budget = Arb_dp.Budget.create ~epsilon:3.0 ~delta:1e-3 in
  let session = R.Session.create ~config:(config ()) ~budget ~db () in
  (match R.Session.run session q with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let left = R.Session.budget_left session in
  (* epsilon 2 spent of 3: the second query must be refused up front. *)
  match R.Session.run session q with
  | Ok _ -> Alcotest.fail "depleted budget must refuse the next query"
  | Error m ->
      checkb "refusal mentions the budget" true (contains m "budget");
      checkb "refusal does not spend" true
        (Arb_dp.Budget.equal left (R.Session.budget_left session));
      checki "still one query" 1 (R.Session.queries_run session)

let test_session_zero_rounds_refuses_immediately () =
  let q, db = session_db () in
  let session =
    R.Session.create ~config:(config ()) ~max_rounds:0 ~budget:big_budget ~db ()
  in
  match R.Session.run session q with
  | Ok _ -> Alcotest.fail "max_rounds 0 must refuse every query"
  | Error m ->
      checkb "round-limit refusal is an Error, not an exception" true
        (contains m "round limit");
      checki "nothing ran" 0 (R.Session.queries_run session)

(* ---------------- trace rendering ---------------- *)

let test_trace_pp_shows_all_counters () =
  let r = clean_report ~seed:1L "top1" in
  let trace = r.R.Exec.trace in
  let s = Format.asprintf "%a" R.Trace.pp trace in
  let j =
    match R.Trace.to_json trace with
    | Arb_util.Json.Obj fields -> List.map fst fields
    | _ -> Alcotest.fail "trace JSON is not an object"
  in
  (* pp and to_json both derive from Trace.fields, whose record pattern is
     exhaustive — so checking every declared field appears in both outputs
     pins the whole chain: a counter can't reach the record without reaching
     both renderings. *)
  List.iter
    (fun name ->
      checkb (Printf.sprintf "pp mentions %S" name) true
        (contains s (name ^ "="));
      checkb (Printf.sprintf "to_json has %S" name) true (List.mem name j))
    (R.Trace.field_names trace)

let test_trace_json_roundtrips () =
  let spec = { Fault.no_faults with Fault.dropout_at = Some 0 } in
  let r =
    match exec_run ~faults:spec ~seed:4L "top1" with
    | Ok r -> r
    | Error f -> Alcotest.fail (Format.asprintf "%a" R.Exec.pp_failure f)
  in
  let j = R.Trace.to_json r.R.Exec.trace in
  let parsed = Arb_util.Json.of_string (Arb_util.Json.to_string j) in
  let module J = Arb_util.Json in
  checki "reassignments serialized" r.R.Exec.trace.R.Trace.committees_reassigned
    (J.to_int (J.member "committees_reassigned" parsed));
  checki "dropout count serialized"
    (List.assoc "committee_dropout" r.R.Exec.trace.R.Trace.faults_injected)
    (J.to_int
       (J.member "committee_dropout" (J.member "faults_injected" parsed)));
  checkb "committee costs present" true
    (List.length (J.to_list (J.member "committee_costs" parsed)) > 0)

(* ---------------- network seams (HTTP front door) ---------------- *)

(* Chaos at the socket edge, same central invariant as the runtime chaos
   suite: whatever the network does — half-sent requests, garbage bytes,
   one-byte-at-a-time stalls, restarts under load, injected accept drops
   and truncated responses — the service core either answers correctly or
   the client sees a typed failure, and service state (budget arithmetic,
   certificate chain, submission accounting) stays consistent. *)

module S = Arb_service
module H = S.Http
module DB = Arb_dp.Budget

let net_host = "127.0.0.1"

let net_sub epsilon =
  {
    S.Workload.query = "top1";
    epsilon;
    categories = None;
    goal = P.Constraints.Min_part_exp_time;
    repeat = 1;
    every = None;
    window = None;
    tolerance = None;
  }

let with_front_door ?(server_config = S.Server.default_config) f =
  let svc =
    S.Service.create
      ~budget:(Arb_dp.Budget.create ~epsilon:100.0 ~delta:0.01)
      ~devices:32 ~seed:5 ()
  in
  let api = S.Api.create ~service:svc () in
  let server =
    S.Server.start ~config:server_config ~handler:(S.Api.handler api) ()
  in
  Fun.protect
    ~finally:(fun () ->
      S.Server.stop server;
      S.Api.join api)
    (fun () -> f svc api server (S.Server.port server))

let healthz_ok port =
  match S.Client.get ~host:net_host ~port "/healthz" with
  | Ok r -> r.H.status = 200
  | Error _ -> false

let test_net_partial_request_disconnect () =
  with_front_door (fun svc _api server port ->
      let fragments =
        [
          "";
          "POST";
          "POST /v1/queries HTTP/1.1\r\n";
          "POST /v1/queries HTTP/1.1\r\ncontent-length: 500\r\n\r\n{\"query\":";
          "GET /healthz HTT";
        ]
      in
      List.iter
        (fun frag ->
          match S.Client.connect ~host:net_host ~port () with
          | Error m -> Alcotest.fail m
          | Ok conn ->
              (match S.Client.send_raw conn frag with
              | Ok () -> ()
              | Error _ -> () (* racing the close is fine *));
              S.Client.close conn)
        fragments;
      (* The server absorbed every mid-request disconnect: it still
         answers, nothing was submitted, and the budget never moved. *)
      checkb "server alive after disconnect storm" true
        (let rec retry n = healthz_ok port || (n > 0 && retry (n - 1)) in
         retry 20);
      checki "no partial submission leaked in" 0 (S.Service.submitted svc);
      checkb "budget untouched" true
        (DB.equal
           (Arb_dp.Budget.create ~epsilon:100.0 ~delta:0.01)
           (S.Service.budget_left svc));
      ignore server)

let test_net_malformed_requests_fail_closed () =
  with_front_door (fun svc _api server port ->
      let attacks =
        [
          ("GARBAGE\r\n\r\n", 400);
          ("GET / SPDY/99\r\n\r\n", 505);
          ("GET /" ^ String.make 9000 'a' ^ " HTTP/1.1\r\n\r\n", 414);
          ("POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n", 501);
          ("POST / HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n", 413);
          ("GET / HTTP/1.1\r\nbad header no colon\r\n\r\n", 400);
        ]
      in
      List.iter
        (fun (wire, expect) ->
          match S.Client.connect ~host:net_host ~port () with
          | Error m -> Alcotest.fail m
          | Ok conn ->
              (match S.Client.send_raw conn wire with
              | Ok () -> ()
              | Error m -> Alcotest.fail m);
              (match S.Client.read_response ~deadline_s:5.0 conn with
              | Ok r ->
                  checki (Printf.sprintf "typed rejection for %S"
                            (String.sub wire 0 (min 20 (String.length wire))))
                    expect r.H.status
              | Error m -> Alcotest.fail ("no rejection came back: " ^ m));
              S.Client.close conn)
        attacks;
      let st = S.Server.stats server in
      checkb "malformed inputs counted" true
        (st.S.Server.bad_requests >= List.length attacks);
      checkb "server alive after malformed storm" true (healthz_ok port);
      checki "nothing submitted" 0 (S.Service.submitted svc))

let test_net_slowloris_stall () =
  with_front_door
    ~server_config:
      { S.Server.default_config with S.Server.request_timeout_s = 0.4 }
    (fun _svc _api server port ->
      (match S.Client.connect ~host:net_host ~port () with
      | Error m -> Alcotest.fail m
      | Ok conn ->
          (* Drip a valid request one fragment at a time, slower than the
             whole-request deadline allows. Per-read timeouts would keep
             resetting; the deadline must not. *)
          let fragments = [ "GET /he"; "althz H"; "TTP/1."; "1\r\nhos" ] in
          List.iter
            (fun frag ->
              ignore (S.Client.send_raw conn frag);
              Unix.sleepf 0.15)
            fragments;
          (match S.Client.read_response ~deadline_s:5.0 conn with
          | Ok r -> checki "stalled request answered 408" 408 r.H.status
          | Error m -> Alcotest.fail ("expected 408: " ^ m));
          S.Client.close conn);
      let st = S.Server.stats server in
      checkb "timeout counted" true (st.S.Server.timeouts >= 1);
      checkb "server alive after stall" true (healthz_ok port))

let test_net_stop_start_overlap_under_load () =
  (* Shutdown races live traffic: every in-flight client must see either a
     valid response or a clean error (never a hang), the service keeps its
     invariants, and the same service can come straight back up on a new
     front door. *)
  let svc =
    S.Service.create
      ~budget:(Arb_dp.Budget.create ~epsilon:100.0 ~delta:0.01)
      ~devices:32 ~seed:5 ()
  in
  let api = S.Api.create ~service:svc () in
  let server = S.Server.start ~handler:(S.Api.handler api) () in
  let port = S.Server.port server in
  let keep_going = Atomic.make true in
  let clients =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let answered = ref 0 and failed = ref 0 in
            while Atomic.get keep_going do
              match S.Client.get ~timeout_s:5.0 ~host:net_host ~port "/healthz" with
              | Ok r when r.H.status = 200 -> incr answered
              | Ok _ | Error _ -> incr failed
            done;
            (!answered, !failed)))
  in
  (* Let load build, submit real work, then yank the server mid-stream. *)
  Unix.sleepf 0.2;
  (match
     S.Client.post_json ~host:net_host ~port
       ~json:(S.Workload.submission_to_json (net_sub 0.5))
       "/v1/queries"
   with
  | Ok r -> checki "submission accepted under load" 202 r.H.status
  | Error m -> Alcotest.fail m);
  S.Server.stop server;
  Atomic.set keep_going false;
  let results = List.map Domain.join clients in
  checkb "every client made progress before the stop" true
    (List.for_all (fun (ok, _) -> ok > 0) results);
  (* Accepted work still drains (graceful): the submission gets its
     record even though the front door is gone. *)
  S.Api.join api;
  checki "accepted submission drained through shutdown" 1
    (List.length (S.Service.history svc));
  checkb "chain verifies after overlap" true (S.Service.chain_verifies svc);
  (* Restart on a fresh port: same service, new front door. *)
  let api2 = S.Api.create ~service:svc () in
  let server2 = S.Server.start ~handler:(S.Api.handler api2) () in
  let port2 = S.Server.port server2 in
  checkb "restarted front door serves" true (healthz_ok port2);
  (match
     S.Client.post_json ~host:net_host ~port:port2
       ~json:(S.Workload.submission_to_json (net_sub 0.5))
       "/v1/queries"
   with
  | Ok r ->
      checki "new submissions accepted after restart" 202 r.H.status;
      checkb "index continues from pre-restart history" true
        (contains r.H.resp_body "\"index\":1")
  | Error m -> Alcotest.fail m);
  S.Server.stop server2;
  S.Api.join api2;
  checki "both submissions recorded" 2 (List.length (S.Service.history svc));
  checkb "chain verifies end to end" true (S.Service.chain_verifies svc)

let test_net_injected_faults_fail_closed () =
  (* Server-side injection: accept drops lose connections before a byte is
     read, response truncation cuts answers off mid-write. Clients with
     retries must converge, the injector must actually fire, and the
     service must stay consistent. *)
  let inj =
    Fault.create ~seed:42L
      {
        Fault.no_faults with
        Fault.accept_drop_p = 0.25;
        response_truncate_p = 0.25;
      }
  in
  with_front_door
    ~server_config:{ S.Server.default_config with S.Server.faults = Some inj }
    (fun svc _api server port ->
      let attempts = 40 in
      let answered = ref 0 in
      for _ = 1 to attempts do
        (* Up to 8 tries per request: drops and truncations surface as
           client-side Errors (fail closed), never as garbled successes. *)
        let rec go tries =
          if tries = 0 then ()
          else
            match S.Client.get ~timeout_s:5.0 ~host:net_host ~port "/healthz" with
            | Ok r when r.H.status = 200 -> incr answered
            | Ok _ -> ()
            | Error _ -> go (tries - 1)
        in
        go 8
      done;
      checki "every request eventually answered" attempts !answered;
      let st = S.Server.stats server in
      checkb "the injector actually fired" true (st.S.Server.faults_injected > 0);
      checkb "injection counted per kind" true
        (Fault.total_injected inj = st.S.Server.faults_injected);
      checki "no submissions invented" 0 (S.Service.submitted svc);
      checkb "server alive" true (healthz_ok port))

let () =
  Alcotest.run "fault"
    [
      ( "chaos",
        [
          Alcotest.test_case "36-scenario single-fault sweep" `Slow
            test_chaos_single_faults;
          Alcotest.test_case "full chaos spec on gap/median/auction" `Slow
            test_chaos_all_faults_other_queries;
          Alcotest.test_case "corruption beyond radius fails closed" `Quick
            test_corruption_beyond_radius_fails_closed;
          Alcotest.test_case "corruption within radius self-heals" `Quick
            test_corruption_within_radius_self_heals;
          Alcotest.test_case "ciphertext tamper always detected" `Quick
            test_tamper_always_detected;
          Alcotest.test_case "all auditors down degrades" `Quick
            test_all_auditors_down_degrades;
          Alcotest.test_case "forced dropout at pick 0 absorbed" `Quick
            test_forced_dropout_at_round;
          Alcotest.test_case "backoff exhaustion fails closed" `Quick
            test_backoff_exhaustion_fails_closed;
        ] );
      ( "cohort-chaos",
        [
          Alcotest.test_case "faults in sampled cohorts absorbed or typed"
            `Slow test_cohort_chaos_absorbed_or_typed;
          Alcotest.test_case "byzantine extrapolation under upload faults"
            `Quick test_cohort_chaos_byzantine_extrapolation;
          qtest prop_cohort_chaos_deterministic;
        ] );
      ( "determinism",
        [
          qtest prop_same_seed_same_trace;
          qtest prop_same_seed_same_trace_clean;
          qtest prop_injector_schedule_deterministic;
          qtest prop_backoff_respects_budget;
          qtest prop_transmit_deterministic;
        ] );
      ( "session-lifecycle",
        [
          Alcotest.test_case "faulted query leaves state intact" `Quick
            test_session_faulted_query_leaves_state_intact;
          Alcotest.test_case "session recovers after absorbed fault" `Quick
            test_session_recovers_after_failure;
          Alcotest.test_case "budget depletion refuses next query" `Quick
            test_session_budget_depletion_refuses_next;
          Alcotest.test_case "max_rounds 0 refuses immediately" `Quick
            test_session_zero_rounds_refuses_immediately;
        ] );
      ( "trace",
        [
          Alcotest.test_case "pp shows every counter" `Quick
            test_trace_pp_shows_all_counters;
          Alcotest.test_case "to_json roundtrips" `Quick
            test_trace_json_roundtrips;
        ] );
      ( "network-chaos",
        [
          Alcotest.test_case "partial-request disconnects absorbed" `Quick
            test_net_partial_request_disconnect;
          Alcotest.test_case "malformed requests fail closed" `Quick
            test_net_malformed_requests_fail_closed;
          Alcotest.test_case "slowloris stall hits the deadline" `Quick
            test_net_slowloris_stall;
          Alcotest.test_case "stop/start overlap under load" `Quick
            test_net_stop_start_overlap_under_load;
          Alcotest.test_case "injected accept-drop/truncate fail closed"
            `Quick test_net_injected_faults_fail_closed;
        ] );
    ]
