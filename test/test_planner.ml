(* Tests for the query planner: operator extraction, expansion, cost model,
   and branch-and-bound search. *)

module P = Arb_planner
module Q = Arb_queries.Registry
module Cm = P.Cost_model

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let qtest = QCheck_alcotest.to_alcotest

let paper_n = 1_000_000_000

(* ---------------- extraction ---------------- *)

let op_names ops = List.map P.Extract.describe ops

let extract name n =
  let q = Q.test_instance name in
  P.Extract.ops q.Q.program ~n

let test_extract_shapes () =
  let has pat ops =
    List.exists
      (fun s ->
        String.length s >= String.length pat
        && String.sub s 0 (String.length pat) = pat)
      (op_names ops)
  in
  let top1 = extract "top1" 1000 in
  checkb "top1 has sum" true (has "sum[" top1);
  checkb "top1 has em" true (has "em[" top1);
  let topk = extract "topK" 1000 in
  checkb "topK em folded to x5" true
    (List.exists (fun s -> s = "em[16] x5") (op_names topk));
  let median = extract "median" 1000 in
  checkb "median has scan" true (has "scan[" median);
  checkb "median has nonlinear" true (has "nonlinear[" median);
  let secrecy = extract "secrecy" 1000 in
  checkb "secrecy has sampled sum" true (has "sampledSum[" secrecy);
  let hypo = extract "hypotest" 1000 in
  checkb "hypotest has laplace" true (has "laplace[" hypo);
  checkb "hypotest has no em" false (has "em[" hypo)

let test_extract_order () =
  (* The encrypted sum always precedes the mechanism. *)
  List.iter
    (fun name ->
      let ops = op_names (extract name 1000) in
      let idx pat =
        let rec go i = function
          | [] -> max_int
          | s :: rest ->
              if
                String.length s >= String.length pat
                && String.sub s 0 (String.length pat) = pat
              then i
              else go (i + 1) rest
        in
        go 0 ops
      in
      checkb (name ^ ": sum before mechanism") true
        (min (idx "sum") (idx "sampledSum") < min (idx "em") (idx "laplace")))
    Q.names

let test_extract_rejects_dynamic () =
  let p =
    {
      Arb_lang.Ast.name = "bad";
      body =
        Arb_lang.Parser.parse_stmt
          "h = sum(db); x = laplace(h[0]); for i = 0 to x do output(1); endfor";
      row = Arb_lang.Ast.One_hot 4;
      epsilon = 0.5;
    }
  in
  checkb "dynamic loop bound unsupported" true
    (try
       ignore (P.Extract.ops p ~n:100);
       false
     with P.Extract.Unsupported _ -> true)

(* ---------------- expansion ---------------- *)

let ctx ?(crypto = P.Plan.Ahe) ?(cols = 1024) ?tolerance () =
  {
    P.Expand.n_devices = paper_n;
    cols;
    crypto;
    bins = None;
    cm = Cm.default;
    redundant_boundaries = false;
    tolerance;
  }

let test_expand_sum_choices () =
  let cs =
    P.Expand.choices (ctx ()) P.Expand.D_enc
      (P.Extract.A_sum { cols = 1024; sampled_phi = None })
  in
  checkb "several sum instantiations" true (List.length cs >= 4);
  checkb "has aggregator loop" true
    (List.exists (fun (c : P.Expand.choice) -> c.P.Expand.label = "sum:aggregator") cs);
  checkb "has sum trees" true
    (List.exists
       (fun (c : P.Expand.choice) ->
         String.length c.P.Expand.label > 8
         && String.sub c.P.Expand.label 0 8 = "sum:tree")
       cs)

let test_expand_em_choices () =
  let cs =
    P.Expand.choices (ctx ()) P.Expand.D_enc
      (P.Extract.A_em { cols = 1024; gap = false; rounds = 1 })
  in
  let gumbels =
    List.filter (fun (c : P.Expand.choice) -> c.P.Expand.em_variant = `Gumbel) cs
  in
  let exps =
    List.filter (fun (c : P.Expand.choice) -> c.P.Expand.em_variant = `Exponentiate) cs
  in
  checkb "many gumbel variants" true (List.length gumbels >= 10);
  checkb "many exponentiation variants" true (List.length exps >= 10);
  List.iter
    (fun (c : P.Expand.choice) ->
      checkb "ends in shares" true
        (match c.P.Expand.domain_after with
        | P.Expand.D_shares _ -> true
        | _ -> false);
      checkb "contains a decrypt vignette" true
        (List.exists
           (fun (v : P.Plan.vignette) ->
             match v.P.Plan.work with P.Plan.W_mpc_decrypt _ -> true | _ -> false)
           c.P.Expand.vignettes))
    cs

let test_expand_nonlinear_needs_fhe_in_enc () =
  let cs = P.Expand.choices (ctx ()) P.Expand.D_enc (P.Extract.A_nonlinear { cols = 64 }) in
  checkb "an FHE option exists" true
    (List.exists (fun (c : P.Expand.choice) -> c.P.Expand.needs_fhe) cs);
  checkb "MPC options do not need FHE" true
    (List.exists (fun (c : P.Expand.choice) -> not c.P.Expand.needs_fhe) cs)

let test_expand_sampled_sum_offers_both_maskings () =
  let ctx = { (ctx ()) with P.Expand.bins = Some 8 } in
  let cs =
    P.Expand.choices ctx P.Expand.D_enc
      (P.Extract.A_sum { cols = 256; sampled_phi = Some 0.25 })
  in
  checkb "fhe mask option" true
    (List.exists (fun (c : P.Expand.choice) -> c.P.Expand.needs_fhe) cs);
  checkb "mpc mask option" true
    (List.exists (fun (c : P.Expand.choice) -> not c.P.Expand.needs_fhe) cs)

let test_expand_prefix () =
  let vs = P.Expand.prefix (ctx ()) ~sampled_bins:None in
  checki "four prelude vignettes" 4 (List.length vs);
  match List.map (fun (v : P.Plan.vignette) -> v.P.Plan.work) vs with
  | [ P.Plan.W_zk_setup _; P.Plan.W_keygen _; P.Plan.W_encrypt_input _;
      P.Plan.W_verify_inputs _ ] ->
      ()
  | _ -> Alcotest.fail "unexpected prelude shape"

let all_aops cols =
  [ P.Extract.A_sum { cols; sampled_phi = None };
    P.Extract.A_scan { cols };
    P.Extract.A_affine { cols };
    P.Extract.A_nonlinear { cols };
    P.Extract.A_laplace { count = cols };
    P.Extract.A_em { cols; gap = false; rounds = 1 };
    P.Extract.A_em { cols; gap = true; rounds = 1 };
    P.Extract.A_mask { cols };
    P.Extract.A_post { flops = 1; outputs = 1 } ]

let prop_expand_total =
  QCheck.Test.make ~name:"every operator has non-empty, well-formed choices"
    ~count:40
    QCheck.(pair (int_range 1 5000) bool)
    (fun (cols, fhe) ->
      let crypto = if fhe then P.Plan.Fhe else P.Plan.Ahe in
      let c = { (ctx ~crypto ~cols ()) with P.Expand.cols } in
      List.for_all
        (fun op ->
          let choices_enc = P.Expand.choices c P.Expand.D_enc op in
          let choices_sh = P.Expand.choices c (P.Expand.D_shares 16) op in
          choices_enc <> []
          && choices_sh <> []
          && List.for_all
               (fun (ch : P.Expand.choice) ->
                 ch.P.Expand.vignettes <> []
                 && List.for_all
                      (fun (v : P.Plan.vignette) ->
                        match v.P.Plan.location with
                        | P.Plan.Committees k -> k >= 1
                        | _ -> true)
                      ch.P.Expand.vignettes)
               (choices_enc @ choices_sh))
        (all_aops cols))

(* ---------------- cost model ---------------- *)

let plan_for ?limits ?heuristics ?max_prefixes name n =
  let q = Q.paper_instance name in
  P.Search.plan ?limits ?heuristics ?max_prefixes ~query:q ~n ()

let metrics_of name n =
  match (plan_for name n).P.Search.metrics with
  | Some m -> m
  | None -> Alcotest.failf "no plan for %s" name

let test_cost_monotone_in_n () =
  let small = metrics_of "top1" 1_000_000 in
  let big = metrics_of "top1" 1_000_000_000 in
  checkb "aggregator time grows with N" true (big.Cm.agg_time > small.Cm.agg_time);
  checkb "aggregator bytes grow with N" true (big.Cm.agg_bytes > small.Cm.agg_bytes);
  checkb "expected participant cost shrinks with N" true
    (big.Cm.part_exp_time <= small.Cm.part_exp_time +. 1e-9)

let test_cost_em_dearer_than_laplace () =
  (* §7.2: the exponential mechanism costs more than the Laplace one. *)
  let em = metrics_of "top1" paper_n in
  let lap = metrics_of "bayes" paper_n in
  checkb "EM aggregator time higher" true (em.Cm.agg_time > lap.Cm.agg_time);
  checkb "EM expected participant time higher" true
    (em.Cm.part_exp_time > lap.Cm.part_exp_time)

let test_cost_ring_scales_with_categories () =
  let small = Cm.ring_for Cm.default P.Plan.Ahe ~cols:1 in
  let big = Cm.ring_for Cm.default P.Plan.Ahe ~cols:32768 in
  checkb "bigger ring for more categories" true (big.Cm.ring_n > small.Cm.ring_n);
  checkb "fhe ciphertexts twice as large" true
    ((Cm.ring_for Cm.default P.Plan.Fhe ~cols:1024).Cm.ct_bytes
    > 1.9 *. (Cm.ring_for Cm.default P.Plan.Ahe ~cols:1024).Cm.ct_bytes)

let test_cost_combine_max_semantics () =
  (* Committee maxima don't add: a device serves on at most one committee. *)
  let mk t =
    {
      Cm.c_agg_time = 0.0; c_agg_bytes = 0.0; c_all_time = 0.0; c_all_bytes = 0.0;
      c_member_time = t; c_member_bytes = 10.0; c_instances = 1; c_members = 5;
      c_kind = `Operations; c_est_error = 0.0;
    }
  in
  let m = Cm.combine ~n_devices:1000 [ mk 10.0; mk 20.0 ] in
  checkb "max member time is the max, not the sum" true
    (Float.abs (m.Cm.part_max_time -. 20.0) < 1e-9);
  checkb "expected is seat-weighted" true
    (Float.abs (m.Cm.part_exp_time -. 0.15) < 1e-9)

let prop_price_scales_with_m =
  QCheck.Test.make ~name:"MPC vignette member cost grows with m" ~count:20
    QCheck.(int_range 10 80)
    (fun m ->
      let v =
        {
          P.Plan.location = P.Plan.Committees 4;
          work = P.Plan.W_mpc_noise { kind = `Gumbel; count = 8 };
        }
      in
      let c1 = Cm.price Cm.default ~n_devices:paper_n ~m ~cols:1024 v in
      let c2 = Cm.price Cm.default ~n_devices:paper_n ~m:(m + 10) ~cols:1024 v in
      c2.Cm.c_member_time > c1.Cm.c_member_time
      && c2.Cm.c_member_bytes > c1.Cm.c_member_bytes)

(* ---------------- search ---------------- *)

let test_search_plans_everything () =
  List.iter
    (fun name ->
      let r = plan_for name paper_n in
      match r.P.Search.plan with
      | Some plan ->
          checkb (name ^ " committees positive") true (plan.P.Plan.committee_count > 0);
          checkb (name ^ " committee size sane") true
            (plan.P.Plan.committee_size >= 10 && plan.P.Plan.committee_size <= 80)
      | None -> Alcotest.failf "no plan for %s" name)
    Q.names

let test_search_respects_limits () =
  List.iter
    (fun name ->
      let m = metrics_of name paper_n in
      checkb (name ^ " under participant time cap") true
        (m.Cm.part_max_time <= (20.0 *. 60.0) +. 1e-6);
      checkb (name ^ " under participant byte cap") true
        (m.Cm.part_max_bytes <= 4.0e9))
    Q.names

let test_search_infeasible_limits () =
  let limits =
    { P.Constraints.no_limits with P.Constraints.max_part_max_time = Some 0.001 }
  in
  let q = Q.paper_instance "top1" in
  let r = P.Search.plan ~limits ~query:q ~n:paper_n () in
  checkb "no plan under impossible limits" true (r.P.Search.plan = None)

let test_search_em_variant_matches_plan () =
  let r = plan_for "top1" paper_n in
  match r.P.Search.plan with
  | Some p -> checkb "top1 plans an em variant" true (p.P.Plan.em_variant <> `None)
  | None -> Alcotest.fail "no plan"

let test_search_heuristics_find_same_best_when_both_finish () =
  (* On a small space, branch-and-bound must not change the winner. *)
  let q = Q.test_instance "hypotest" in
  let with_h = P.Search.plan ~query:q ~n:100_000 () in
  let without_h = P.Search.plan ~heuristics:false ~query:q ~n:100_000 () in
  checkb "neither aborted" true
    ((not with_h.P.Search.stats.P.Search.aborted)
    && not without_h.P.Search.stats.P.Search.aborted);
  match (with_h.P.Search.metrics, without_h.P.Search.metrics) with
  | Some m1, Some m2 ->
      checkb "same optimal expected participant time" true
        (Float.abs (m1.Cm.part_exp_time -. m2.Cm.part_exp_time) < 1e-9)
  | _ -> Alcotest.fail "plans missing"

let test_search_pruning_admissible_all_queries () =
  (* Regression for the unsound bound: prefixes used to be priced at the
     committee size for 1024 committees — an overestimate, so the "lower
     bound" could exceed a completion's true cost and prune the branch
     holding the optimum. Prefixes are now priced at the single-committee
     size. Heuristic and exhaustive search must agree on the winner for
     every registry query (on a space small enough to exhaust). *)
  List.iter
    (fun name ->
      let q = Q.test_instance name in
      let pruned = P.Search.plan ~query:q ~n:100_000 () in
      let exhaustive =
        P.Search.plan ~heuristics:false ~max_prefixes:3_000_000 ~query:q
          ~n:100_000 ()
      in
      checkb (name ^ ": neither run hit the prefix cap") true
        ((not pruned.P.Search.stats.P.Search.aborted)
        && not exhaustive.P.Search.stats.P.Search.aborted);
      match (pruned.P.Search.metrics, exhaustive.P.Search.metrics) with
      | Some m1, Some m2 ->
          (* Both minimize over the same finite plan set and score full
             plans with the same canonical combine, so the optimum matches
             exactly — no tolerance. *)
          checkb (name ^ ": pruned search finds the exhaustive optimum") true
            (P.Constraints.goal_value P.Constraints.Min_part_exp_time m1
            = P.Constraints.goal_value P.Constraints.Min_part_exp_time m2)
      | None, None -> ()
      | _ -> Alcotest.failf "%s: one mode found a plan, the other none" name)
    Q.names

let render_winner r =
  match (r.P.Search.plan, r.P.Search.metrics) with
  | Some p, Some m ->
      P.Plan_io.plan_to_string p ^ "\n"
      ^ Arb_util.Json.to_string (P.Plan_io.metrics_to_json m)
  | _ -> "none"

let test_search_parallel_matches_sequential () =
  (* The multicore fan-out must be invisible in the winner: admissible
     bounds, strict incumbent pruning and the canonical-order merge make
     the winning plan and its metrics byte-identical whatever the domain
     count. (The ranked runner-ups are best-effort under pruning — which
     non-winning plans get fully scored depends on when the shared
     incumbent arrives — so they are checked separately, without
     pruning, below.) *)
  List.iter
    (fun name ->
      let q = Q.test_instance name in
      let seq = P.Search.plan ~domains:1 ~query:q ~n:1_000_000 () in
      let par = P.Search.plan ~domains:4 ~query:q ~n:1_000_000 () in
      Alcotest.check Alcotest.string
        (name ^ ": 4-domain winner identical to sequential")
        (render_winner seq) (render_winner par))
    Q.names

let test_search_parallel_exhaustive_fully_deterministic () =
  (* Without pruning nothing depends on incumbent timing, so the whole
     result — winner, metrics AND ranked alternatives — must be
     byte-identical across domain counts. *)
  let q = Q.test_instance "cms" in
  let render r =
    String.concat "\n"
      (render_winner r
      :: List.map (fun (p, _) -> P.Plan_io.plan_to_string p) r.P.Search.alternatives)
  in
  let seq = P.Search.plan ~heuristics:false ~domains:1 ~query:q ~n:1_000_000 () in
  let par = P.Search.plan ~heuristics:false ~domains:4 ~query:q ~n:1_000_000 () in
  Alcotest.check Alcotest.string "exhaustive result identical incl. alternatives"
    (render seq) (render par)

let test_search_incremental_matches_full_repricing () =
  (* The partial-metrics monoid prices only delta vignettes per node; the
     winner must match the naive re-price-the-whole-prefix mode. *)
  List.iter
    (fun name ->
      let q = Q.test_instance name in
      let inc = P.Search.plan ~incremental:true ~query:q ~n:1_000_000 () in
      let full = P.Search.plan ~incremental:false ~query:q ~n:1_000_000 () in
      match (inc.P.Search.plan, full.P.Search.plan) with
      | Some p1, Some p2 ->
          Alcotest.check Alcotest.string
            (name ^ ": incremental pricing preserves the winner")
            (P.Plan_io.plan_to_string p2)
            (P.Plan_io.plan_to_string p1)
      | None, None -> ()
      | _ -> Alcotest.failf "%s: pricing modes disagree on feasibility" name)
    Q.names

let test_search_ablation_blowup () =
  (* §7.3: disabling the heuristics inflates the explored space by orders
     of magnitude. *)
  let on = plan_for "top1" paper_n in
  let off = plan_for ~heuristics:false ~max_prefixes:500_000 "top1" paper_n in
  checkb
    (Printf.sprintf "blowup %d -> %d" on.P.Search.stats.P.Search.prefixes
       off.P.Search.stats.P.Search.prefixes)
    true
    (off.P.Search.stats.P.Search.prefixes > 50 * on.P.Search.stats.P.Search.prefixes)

let test_search_committee_sizing_consistent () =
  let r = plan_for "topK" paper_n in
  match r.P.Search.plan with
  | Some p ->
      let expected = P.Search.committee_size_for (max 1 p.P.Plan.committee_count) in
      checki "committee size matches solver" expected p.P.Plan.committee_size
  | None -> Alcotest.fail "no plan"

let test_search_aggregator_limit_forces_outsourcing () =
  (* Fig 10: a binding aggregator limit moves the sum off the aggregator. *)
  let q = Q.paper_instance "top1" in
  let n = 1 lsl 28 in
  let unlimited =
    P.Search.plan
      ~limits:{ P.Constraints.evaluation_limits with P.Constraints.max_agg_time = None }
      ~query:q ~n ()
  in
  let limited =
    P.Search.plan
      ~limits:(P.Constraints.with_agg_core_hours P.Constraints.evaluation_limits 1000.0)
      ~query:q ~n ()
  in
  match (unlimited.P.Search.metrics, limited.P.Search.metrics) with
  | Some mu, Some ml ->
      checkb "limited plan has lower aggregator time" true
        (ml.Cm.agg_time < mu.Cm.agg_time);
      checkb "limit respected" true (ml.Cm.agg_time <= 1000.0 *. 3600.0)
  | _ -> Alcotest.fail "plans missing"

let test_search_stops_at_2_30_under_1000h () =
  (* Fig 10: with A = 1000 core-hours the red line stops — ZKP verification
     alone exceeds the cap before N = 2^30. *)
  let q = Q.paper_instance "top1" in
  let limits = P.Constraints.with_agg_core_hours P.Constraints.evaluation_limits 1000.0 in
  let at n = (P.Search.plan ~limits ~query:q ~n ()).P.Search.plan <> None in
  checkb "feasible at 2^26" true (at (1 lsl 26));
  checkb "infeasible at 2^30" false (at (1 lsl 30))

(* ---------------- approximate variants under an error tolerance ------ *)

let test_tolerance_byte_identity () =
  (* Without a tolerance — or with one tighter than any approximate
     variant — the winner is the byte-identical exact plan. *)
  let q = Q.paper_instance "top1" in
  let pick tol =
    let limits = P.Constraints.with_error_tolerance P.Constraints.no_limits tol in
    match (P.Search.plan ~limits ~query:q ~n:paper_n ()).P.Search.plan with
    | Some p -> p
    | None -> Alcotest.fail "no plan"
  in
  let exact = pick None and tight = pick (Some 1e-12) in
  Alcotest.check Alcotest.string "tight tolerance keeps the exact winner"
    (Format.asprintf "%a" P.Plan.pp exact)
    (Format.asprintf "%a" P.Plan.pp tight);
  checkb "exact winner does not sample" true (exact.P.Plan.device_sample = None)

let test_tolerance_admits_cheaper_winner () =
  let q = Q.paper_instance "top1" in
  let goal = P.Constraints.Min_part_exp_time in
  let run tol =
    let limits = P.Constraints.with_error_tolerance P.Constraints.no_limits tol in
    match
      (P.Search.plan ~goal ~limits ~query:q ~n:paper_n ()).P.Search.metrics
    with
    | Some m -> m
    | None -> Alcotest.fail "no plan"
  in
  let m_exact = run None and m_approx = run (Some 0.1) in
  checkb "exact winner carries zero est_error" true
    (m_exact.Cm.est_error = 0.0);
  checkb "approx winner within tolerance" true
    (m_approx.Cm.est_error > 0.0 && m_approx.Cm.est_error <= 0.1);
  checkb "approx winner at least 10x cheaper" true
    (P.Constraints.goal_value goal m_approx
    <= 0.1 *. P.Constraints.goal_value goal m_exact)

let test_est_error_pricing_and_pruning () =
  (* The sampling term is 2/sqrt(phi*n), additive with vignette error;
     plans over the tolerance are pruned like any constraint violation. *)
  let m = Cm.combine ~sample_phi:0.01 ~n_devices:10_000 [] in
  checkb "sampling error term" true
    (Float.abs (m.Cm.est_error -. 0.2) < 1e-9);
  let q = Q.paper_instance "top1" in
  let limits =
    P.Constraints.with_error_tolerance P.Constraints.no_limits (Some 0.05)
  in
  let r = P.Search.plan ~limits ~query:q ~n:paper_n () in
  List.iter
    (fun (_, (m : Cm.metrics)) ->
      checkb "every surviving candidate within tolerance" true
        (m.Cm.est_error <= 0.05))
    r.P.Search.alternatives

let test_goals_change_plans () =
  (* Different optimization goals must be able to pick different plans:
     minimizing aggregator time favors outsourcing; minimizing expected
     participant time favors the aggregator loop. *)
  let q = Q.paper_instance "top1" in
  let plan_with goal =
    match
      (P.Search.plan ~goal ~limits:P.Constraints.no_limits ~query:q ~n:paper_n ())
        .P.Search.metrics
    with
    | Some m -> m
    | None -> Alcotest.fail "no plan"
  in
  let m_agg = plan_with P.Constraints.Min_agg_time in
  let m_part = plan_with P.Constraints.Min_part_exp_time in
  checkb "agg-time goal achieves lower aggregator time" true
    (m_agg.Cm.agg_time <= m_part.Cm.agg_time);
  checkb "participant goal achieves lower expected participant time" true
    (m_part.Cm.part_exp_time <= m_agg.Cm.part_exp_time);
  checkb "the goals trade off (plans differ)" true
    (m_agg.Cm.agg_time < m_part.Cm.agg_time
    || m_part.Cm.part_exp_time < m_agg.Cm.part_exp_time)

let test_calibrate_produces_sane_constants () =
  (* Microbenchmarking this machine must yield positive, ordered op costs:
     add < mul_plain (NTT-bound). *)
  let cm = Cm.calibrate () in
  let v =
    { P.Plan.location = P.Plan.Aggregator;
      work = P.Plan.W_he_sum { crypto = P.Plan.Ahe; cts = 1; inputs = 1000 } }
  in
  let c = Cm.price cm ~n_devices:paper_n ~m:40 ~cols:1024 v in
  checkb "calibrated sum cost positive" true (c.Cm.c_agg_time > 0.0)

let test_plan_pretty_prints () =
  let r = plan_for "median" paper_n in
  match r.P.Search.plan with
  | Some p ->
      let s = Format.asprintf "%a" P.Plan.pp p in
      checkb "non-trivial rendering" true (String.length s > 100)
  | None -> Alcotest.fail "no plan"

let test_alternatives_ranked () =
  (* Without pruning the search sees the whole space, so several
     alternatives survive; they must be ranked by the goal. *)
  let q = Q.test_instance "cms" in
  let r = P.Search.plan ~heuristics:false ~query:q ~n:1_000_000 () in
  let alts = r.P.Search.alternatives in
  checkb "at least two alternatives" true (List.length alts >= 2);
  let values =
    List.map (fun (_, m) -> m.Cm.part_exp_time) alts
  in
  checkb "ranked by goal value" true
    (List.sort compare values = values);
  (match (r.P.Search.plan, alts) with
  | Some best, (first, _) :: _ -> checkb "winner heads the list" true (best = first)
  | _ -> Alcotest.fail "missing plan")

(* ---------------- serialization ---------------- *)

let test_plan_json_roundtrip_all_queries () =
  List.iter
    (fun name ->
      let r = plan_for name paper_n in
      match r.P.Search.plan with
      | Some plan ->
          let json = P.Plan_io.plan_to_string ~pretty:true plan in
          let back = P.Plan_io.plan_of_string json in
          checkb (name ^ " roundtrips") true (back = plan)
      | None -> Alcotest.failf "no plan for %s" name)
    Q.names

let test_metrics_json_roundtrip () =
  let m = metrics_of "top1" paper_n in
  let back =
    P.Plan_io.metrics_of_json (P.Plan_io.metrics_to_json m)
  in
  checkb "metrics roundtrip" true (back = m)

(* Random plans, covering every [work] constructor — not just the shapes
   the search happens to emit today. *)
let gen_plan =
  let open QCheck.Gen in
  let crypto = oneofl [ P.Plan.Ahe; P.Plan.Fhe ] in
  let kind = oneofl [ `Gumbel; `Laplace ] in
  let small = 1 -- 4096 in
  let work =
    oneof
      [
        map (fun c -> P.Plan.W_keygen c) crypto;
        map (fun n -> P.Plan.W_zk_setup { constraints = n }) small;
        map3
          (fun crypto cts_per_device zk_constraints ->
            P.Plan.W_encrypt_input { crypto; cts_per_device; zk_constraints })
          crypto small small;
        map (fun devices -> P.Plan.W_verify_inputs { devices }) small;
        map3
          (fun crypto cts inputs -> P.Plan.W_he_sum { crypto; cts; inputs })
          crypto small small;
        map3
          (fun crypto cts (muls, adds) ->
            P.Plan.W_he_affine { crypto; cts; muls; adds })
          crypto small (pair small small);
        map3
          (fun crypto cts rotations ->
            P.Plan.W_he_rotate_sum { crypto; cts; rotations })
          crypto small small;
        map2 (fun crypto cts -> P.Plan.W_mpc_decrypt { crypto; cts }) crypto small;
        map3
          (fun crypto cts (kind, count) ->
            P.Plan.W_mpc_decrypt_noise { crypto; cts; kind; count })
          crypto small (pair kind small);
        map (fun elements -> P.Plan.W_mpc_affine { elements }) small;
        map (fun elements -> P.Plan.W_mpc_scan { elements }) small;
        map (fun elements -> P.Plan.W_mpc_nonlinear { elements }) small;
        map2 (fun kind count -> P.Plan.W_mpc_noise { kind; count }) kind small;
        map (fun inputs -> P.Plan.W_mpc_argmax { inputs }) small;
        map (fun count -> P.Plan.W_mpc_exp { count }) small;
        map (fun inputs -> P.Plan.W_mpc_sample_index { inputs }) small;
        map (fun values -> P.Plan.W_mpc_output { values }) small;
        map (fun flops -> P.Plan.W_post { flops }) small;
        map3
          (fun crypto cts (width, depth) ->
            P.Plan.W_he_sketch { crypto; cts; width; depth })
          crypto small (pair small (1 -- 8));
        map3
          (fun crypto cts groups -> P.Plan.W_he_coarsen { crypto; cts; groups })
          crypto small small;
      ]
  in
  let location =
    oneof
      [
        return P.Plan.Aggregator;
        map (fun c -> P.Plan.Committees c) (1 -- 64);
        return P.Plan.Participants;
      ]
  in
  let vignette = map2 (fun location work -> { P.Plan.location; work }) location work in
  let plan =
    let* query = oneofl Q.names in
    let* crypto = crypto in
    let* vignettes = list_size (1 -- 12) vignette in
    let* sample_bins = opt (1 -- 1024) in
    let* committee_count = 0 -- 4096 in
    let* committee_size = 1 -- 80 in
    let* em_variant = oneofl [ `Gumbel; `Exponentiate; `Sketch; `None ] in
    let* device_sample = opt (map (fun k -> 1.0 /. float_of_int k) (1 -- 1000)) in
    return
      {
        P.Plan.query;
        crypto;
        vignettes;
        sample_bins;
        device_sample;
        committee_count;
        committee_size;
        em_variant;
      }
  in
  QCheck.make ~print:(Format.asprintf "%a" P.Plan.pp) plan

let prop_plan_json_roundtrip =
  QCheck.Test.make ~name:"plan JSON roundtrip (random plans)" ~count:500 gen_plan
    (fun plan -> P.Plan_io.plan_of_string (P.Plan_io.plan_to_string plan) = plan)

let gen_metrics =
  let open QCheck.Gen in
  let finite = map (fun f -> if Float.is_finite f then f else 0.0) float in
  let metrics =
    map
      (fun ((agg_time, agg_bytes, part_exp_time, part_max_time,
             part_exp_bytes, part_max_bytes), est_error) ->
        {
          Cm.agg_time;
          agg_bytes;
          part_exp_time;
          part_max_time;
          part_exp_bytes;
          part_max_bytes;
          est_error;
        })
      (pair (tup6 finite finite finite finite finite finite) finite)
  in
  QCheck.make ~print:(Format.asprintf "%a" Cm.pp_metrics) metrics

let prop_metrics_json_roundtrip =
  QCheck.Test.make ~name:"metrics JSON roundtrip (random finite metrics)"
    ~count:1000 gen_metrics (fun m ->
      P.Plan_io.metrics_of_json
        (Arb_util.Json.of_string
           (Arb_util.Json.to_string (P.Plan_io.metrics_to_json m)))
      = m)

let test_metrics_json_rejects_nonfinite () =
  (* The old %.17g encoder emitted "inf"/"nan", which no parser takes back.
     Serialization must fail loudly instead. *)
  List.iter
    (fun bad ->
      let m = { Cm.zero_metrics with Cm.part_exp_time = bad } in
      checkb
        (Printf.sprintf "raises on %h" bad)
        true
        (try
           ignore (Arb_util.Json.to_string (P.Plan_io.metrics_to_json m));
           false
         with Invalid_argument _ -> true))
    [ Float.infinity; Float.neg_infinity; Float.nan ]

let test_plan_json_rejects_garbage () =
  checkb "garbage rejected" true
    (try
       ignore (P.Plan_io.plan_of_string "{\"query\": 42}");
       false
     with Arb_util.Json.Parse_error _ -> true)

let test_explain_renders () =
  let q = Q.paper_instance "top1" in
  let r = P.Search.plan ~query:q ~n:paper_n () in
  match (r.P.Search.plan, r.P.Search.metrics) with
  | Some plan, Some m ->
      let text =
        P.Explain.full ~cm:Cm.default ~n_devices:paper_n
          ~cols:q.Q.categories plan m r.P.Search.alternatives
      in
      checkb "mentions the query" true
        (String.length text > 300
        &&
        let contains hay needle =
          let nl = String.length needle and hl = String.length hay in
          let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
          go 0
        in
        contains text "top1" && contains text "keygen" && contains text "aggregator")
  | _ -> Alcotest.fail "no plan"

(* ---------------- baselines ---------------- *)

let test_orchard_single_committee_costlier_max () =
  (* The single Orchard committee bears more per-member cost than
     Arboretum's spread committees for the same large-C Laplace query. *)
  let cols = 2048 in
  let orch =
    Arb_baselines.Baselines.orchard_metrics ~n:paper_n ~cols ~noise_count:cols
      ~cm:Cm.default
  in
  let q = Q.make ~name:"cms" ~c:cols () in
  let arb =
    match (P.Search.plan ~query:q ~n:paper_n ()).P.Search.metrics with
    | Some m -> m
    | None -> Alcotest.fail "no arboretum plan"
  in
  checkb "orchard max member time >= arboretum's" true
    (orch.Cm.part_max_time >= arb.Cm.part_max_time);
  checkb "expected costs similar (within 3x)" true
    (orch.Cm.part_exp_bytes < (3.0 *. arb.Cm.part_exp_bytes) +. 1.0e6)

let test_strawmen_orders_of_magnitude () =
  let fhe = Arb_baselines.Baselines.fhe_only ~n:100_000_000 ~cols:41_683 in
  checkb "FHE-only needs years" true
    (fhe.Arb_baselines.Baselines.agg_compute_seconds > 3.0e7);
  let mpc = Arb_baselines.Baselines.all_to_all_mpc ~n:100_000_000 in
  checkb "all-to-all needs GBs per device" true
    (mpc.Arb_baselines.Baselines.participant_bytes_typical > 1.0e9);
  let b = Arb_baselines.Baselines.boehler_median ~n:1_300_000_000 ~m:40 in
  checkb "Boehler committee needs TBs" true
    (b.Arb_baselines.Baselines.committee_bytes > 5.0e12)

let () =
  Alcotest.run "arb_planner"
    [
      ( "extract",
        [
          Alcotest.test_case "operator shapes" `Quick test_extract_shapes;
          Alcotest.test_case "order" `Quick test_extract_order;
          Alcotest.test_case "rejects dynamic bounds" `Quick test_extract_rejects_dynamic;
        ] );
      ( "expand",
        [
          Alcotest.test_case "sum choices" `Quick test_expand_sum_choices;
          Alcotest.test_case "em choices" `Quick test_expand_em_choices;
          Alcotest.test_case "nonlinear needs FHE in enc domain" `Quick
            test_expand_nonlinear_needs_fhe_in_enc;
          Alcotest.test_case "sampled sum maskings" `Quick
            test_expand_sampled_sum_offers_both_maskings;
          Alcotest.test_case "prelude" `Quick test_expand_prefix;
          qtest prop_expand_total;
        ] );
      ( "cost-model",
        [
          Alcotest.test_case "monotone in N" `Quick test_cost_monotone_in_n;
          Alcotest.test_case "EM dearer than Laplace" `Quick
            test_cost_em_dearer_than_laplace;
          Alcotest.test_case "ring scaling" `Quick test_cost_ring_scales_with_categories;
          Alcotest.test_case "combine max semantics" `Quick
            test_cost_combine_max_semantics;
          qtest prop_price_scales_with_m;
        ] );
      ( "search",
        [
          Alcotest.test_case "plans all ten queries" `Slow test_search_plans_everything;
          Alcotest.test_case "respects limits" `Slow test_search_respects_limits;
          Alcotest.test_case "infeasible limits" `Quick test_search_infeasible_limits;
          Alcotest.test_case "em variant chosen" `Quick
            test_search_em_variant_matches_plan;
          Alcotest.test_case "heuristics preserve the optimum" `Quick
            test_search_heuristics_find_same_best_when_both_finish;
          Alcotest.test_case "pruning admissible on every query" `Slow
            test_search_pruning_admissible_all_queries;
          Alcotest.test_case "parallel matches sequential" `Slow
            test_search_parallel_matches_sequential;
          Alcotest.test_case "exhaustive parallel fully deterministic" `Slow
            test_search_parallel_exhaustive_fully_deterministic;
          Alcotest.test_case "incremental pricing matches full" `Slow
            test_search_incremental_matches_full_repricing;
          Alcotest.test_case "ablation blowup" `Slow test_search_ablation_blowup;
          Alcotest.test_case "committee sizing consistent" `Quick
            test_search_committee_sizing_consistent;
          Alcotest.test_case "limit forces outsourcing" `Quick
            test_search_aggregator_limit_forces_outsourcing;
          Alcotest.test_case "red line stops" `Quick test_search_stops_at_2_30_under_1000h;
          Alcotest.test_case "tolerance: exact byte-identity" `Quick
            test_tolerance_byte_identity;
          Alcotest.test_case "tolerance: cheaper winner admitted" `Quick
            test_tolerance_admits_cheaper_winner;
          Alcotest.test_case "tolerance: est_error priced and pruned" `Quick
            test_est_error_pricing_and_pruning;
          Alcotest.test_case "goals change plans" `Quick test_goals_change_plans;
          Alcotest.test_case "calibration sane" `Slow test_calibrate_produces_sane_constants;
          Alcotest.test_case "plan pretty-prints" `Quick test_plan_pretty_prints;
        ] );
      ( "alternatives",
        [ Alcotest.test_case "ranked design-space sample" `Quick test_alternatives_ranked ] );
      ( "serialization",
        [
          Alcotest.test_case "plan JSON roundtrip (all queries)" `Slow
            test_plan_json_roundtrip_all_queries;
          Alcotest.test_case "metrics roundtrip" `Quick test_metrics_json_roundtrip;
          qtest prop_plan_json_roundtrip;
          qtest prop_metrics_json_roundtrip;
          Alcotest.test_case "non-finite metrics rejected" `Quick
            test_metrics_json_rejects_nonfinite;
          Alcotest.test_case "garbage rejected" `Quick test_plan_json_rejects_garbage;
        ] );
      ( "explain",
        [ Alcotest.test_case "renders the vignette table" `Quick test_explain_renders ] );
      ( "baselines",
        [
          Alcotest.test_case "orchard single committee" `Quick
            test_orchard_single_committee_costlier_max;
          Alcotest.test_case "strawman magnitudes" `Quick
            test_strawmen_orders_of_magnitude;
        ] );
    ]
