(* HTTP front door tests: the pure parser (every malformed, oversized or
   partial input maps to the right outcome), response serialization, and
   end-to-end socket exchanges against a live Server — including the
   JSON API submitting real queries and the byte-identity of lifecycle
   records between the HTTP and in-process paths. *)

module S = Arb_service
module H = S.Http
module B = Arb_dp.Budget
module P = Arb_planner
module J = Arb_util.Json

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  n = 0 || go 0

let sub ?categories ?(repeat = 1) ?(goal = P.Constraints.Min_part_exp_time)
    ~epsilon query =
  { S.Workload.query; epsilon; categories; goal; repeat; every = None;
    window = None; tolerance = None }

let service ?(epsilon = 100.0) ?(delta = 0.01) ?(devices = 32) ?(seed = 5) () =
  S.Service.create ~budget:(B.create ~epsilon ~delta) ~devices ~seed ()

let rec wait_until ?(tries = 400) f =
  f ()
  || tries > 0
     && (Unix.sleepf 0.025;
         wait_until ~tries:(tries - 1) f)

(* ---------------- parser ---------------- *)

let get_request =
  "GET /v1/queries/3?x=a%20b&flag HTTP/1.1\r\nHost: example\r\nX-Thing: v\r\n\r\n"

let test_parse_get () =
  match H.parse_request get_request with
  | H.Complete (r, consumed) ->
      checks "method" "GET" r.H.meth;
      checks "decoded path" "/v1/queries/3" r.H.path;
      checkb "query decoded" true
        (r.H.query = [ ("x", "a b"); ("flag", "") ]);
      checks "header names lowercased" "example"
        (Option.get (List.assoc_opt "host" r.H.headers));
      checks "empty body" "" r.H.body;
      checki "whole buffer consumed" (String.length get_request) consumed
  | _ -> Alcotest.fail "valid GET did not parse"

let test_parse_pipelined () =
  let post = "POST /v1/queries HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd" in
  let buf = post ^ get_request in
  match H.parse_request buf with
  | H.Complete (r, consumed) -> (
      checks "body" "abcd" r.H.body;
      checki "consumed just the first request" (String.length post) consumed;
      let rest = String.sub buf consumed (String.length buf - consumed) in
      match H.parse_request rest with
      | H.Complete (r2, _) -> checks "second request" "GET" r2.H.meth
      | _ -> Alcotest.fail "pipelined second request did not parse")
  | _ -> Alcotest.fail "valid POST did not parse"

let test_every_prefix_is_partial () =
  let full = "POST /q HTTP/1.1\r\ncontent-length: 6\r\nhost: x\r\n\r\nabcdef" in
  for i = 0 to String.length full - 1 do
    match H.parse_request (String.sub full 0 i) with
    | H.Partial -> ()
    | H.Complete _ -> Alcotest.failf "prefix %d parsed as complete" i
    | H.Reject (st, _) -> Alcotest.failf "prefix %d rejected with %d" i st
  done;
  match H.parse_request full with
  | H.Complete (r, _) -> checks "full buffer parses" "abcdef" r.H.body
  | _ -> Alcotest.fail "full buffer did not parse"

let reject_status input =
  match H.parse_request input with
  | H.Reject (st, _) -> st
  | H.Complete _ -> Alcotest.fail "malformed input parsed"
  | H.Partial -> Alcotest.fail "malformed input left partial"

let test_rejects () =
  checki "garbage request line" 400 (reject_status "GARBAGE\r\n\r\n");
  checki "double-space request line" 400
    (reject_status "GET  /x HTTP/1.1\r\n\r\n");
  checki "unsupported version" 505 (reject_status "GET / HTTP/2.0\r\n\r\n");
  checki "request line too long" 414
    (reject_status ("GET /" ^ String.make 9000 'a' ^ " HTTP/1.1\r\n\r\n"));
  (* ... even before the newline arrives. *)
  checki "oversized line without newline" 414
    (reject_status (String.make 9000 'a'));
  let many_headers =
    "GET / HTTP/1.1\r\n"
    ^ String.concat ""
        (List.init 101 (fun i -> Printf.sprintf "h%d: v\r\n" i))
    ^ "\r\n"
  in
  checki "too many headers" 431 (reject_status many_headers);
  checki "oversized body" 413
    (reject_status
       (Printf.sprintf "POST / HTTP/1.1\r\ncontent-length: %d\r\n\r\n"
          ((1 lsl 20) + 1)));
  checki "chunked rejected" 501
    (reject_status
       "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n");
  checki "malformed content-length" 400
    (reject_status "POST / HTTP/1.1\r\ncontent-length: abc\r\n\r\n");
  checki "multiple content-lengths" 400
    (reject_status
       "POST / HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 2\r\n\r\nx");
  checki "malformed header line" 400
    (reject_status "GET / HTTP/1.1\r\nnot a header\r\n\r\n");
  checki "malformed header name" 400
    (reject_status "GET / HTTP/1.1\r\nbad name: v\r\n\r\n")

let test_header_block_limit () =
  let limits = { H.default_limits with H.max_header_bytes = 256 } in
  match
    H.parse_request ~limits
      ("GET / HTTP/1.1\r\nbig: " ^ String.make 300 'x' ^ "\r\n\r\n")
  with
  | H.Reject (431, _) -> ()
  | _ -> Alcotest.fail "oversized header block not rejected with 431"

let parse_exn input =
  match H.parse_request input with
  | H.Complete (r, _) -> r
  | _ -> Alcotest.fail "expected a complete request"

let test_keep_alive () =
  checkb "1.1 defaults on" true
    (H.keep_alive (parse_exn "GET / HTTP/1.1\r\n\r\n"));
  checkb "1.1 close wins" false
    (H.keep_alive (parse_exn "GET / HTTP/1.1\r\nconnection: close\r\n\r\n"));
  checkb "1.0 defaults off" false
    (H.keep_alive (parse_exn "GET / HTTP/1.0\r\n\r\n"));
  checkb "1.0 keep-alive wins" true
    (H.keep_alive
       (parse_exn "GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"))

let test_lenient_line_endings () =
  let r = parse_exn "\r\n\nGET /x HTTP/1.1\nhost: x\n\n" in
  checks "bare-LF request parses" "/x" r.H.path

(* ---------------- response serialization ---------------- *)

let test_response_roundtrip () =
  let resp = H.json_response ~status:202 (J.Obj [ ("ok", J.Bool true) ]) in
  let wire = H.response_to_string ~close:false resp in
  checkb "advertises keep-alive" true (contains wire "connection: keep-alive");
  (match H.parse_response wire with
  | H.Complete (r, consumed) ->
      checki "status" 202 r.H.status;
      checkb "body round-trips" true (contains r.H.resp_body "\"ok\":true");
      checki "consumed everything" (String.length wire) consumed
  | _ -> Alcotest.fail "serialized response did not parse");
  let wire_close = H.response_to_string ~close:true resp in
  checkb "advertises close" true (contains wire_close "connection: close")

let test_request_roundtrip () =
  let wire =
    H.request_to_string ~body:"{\"a\":1}" ~meth:"POST" ~target:"/v1/queries" ()
  in
  let r = parse_exn wire in
  checks "method" "POST" r.H.meth;
  checks "body" "{\"a\":1}" r.H.body

(* ---------------- end-to-end over sockets ---------------- *)

let host = "127.0.0.1"

let with_server ?(config = S.Server.default_config) handler f =
  let server = S.Server.start ~config ~handler () in
  Fun.protect ~finally:(fun () -> S.Server.stop server) (fun () -> f server)

let ok_handler _req = H.json_response ~status:200 (J.Obj [ ("ok", J.Bool true) ])

let test_e2e_get () =
  with_server ok_handler (fun server ->
      let port = S.Server.port server in
      match S.Client.get ~host ~port "/" with
      | Ok r ->
          checki "status" 200 r.H.status;
          checkb "body" true (contains r.H.resp_body "\"ok\":true")
      | Error m -> Alcotest.fail m)

let test_e2e_keep_alive () =
  with_server
    (fun req -> H.json_response ~status:200 (J.Obj [ ("path", J.String req.H.path) ]))
    (fun server ->
      let port = S.Server.port server in
      match S.Client.connect ~host ~port () with
      | Error m -> Alcotest.fail m
      | Ok conn ->
          List.iter
            (fun path ->
              match S.Client.request conn ~meth:"GET" ~target:path () with
              | Ok r -> checkb ("echoed " ^ path) true (contains r.H.resp_body path)
              | Error m -> Alcotest.fail m)
            [ "/one"; "/two"; "/three" ];
          S.Client.close conn)

let test_e2e_accept_edge_busy () =
  (* max_pending = 0 makes the accept edge refuse every connection inline:
     the deterministic way to observe the 429 path. *)
  with_server
    ~config:{ S.Server.default_config with S.Server.max_pending = 0 }
    ok_handler
    (fun server ->
      let port = S.Server.port server in
      (match S.Client.get ~host ~port "/" with
      | Ok r ->
          checki "accept-edge busy" 429 r.H.status;
          checkb "names the reason" true (contains r.H.resp_body "queueFull")
      | Error m -> Alcotest.fail m);
      let st = S.Server.stats server in
      checkb "counted as rejected_busy" true (st.S.Server.rejected_busy >= 1))

let test_e2e_request_deadline () =
  with_server
    ~config:{ S.Server.default_config with S.Server.request_timeout_s = 0.3 }
    ok_handler
    (fun server ->
      let port = S.Server.port server in
      match S.Client.connect ~host ~port () with
      | Error m -> Alcotest.fail m
      | Ok conn ->
          (match S.Client.send_raw conn "GET / HT" with
          | Ok () -> ()
          | Error m -> Alcotest.fail m);
          (match S.Client.read_response ~deadline_s:5.0 conn with
          | Ok r -> checki "slowloris answered 408" 408 r.H.status
          | Error m -> Alcotest.fail ("expected 408, got error: " ^ m));
          S.Client.close conn)

let test_e2e_concurrent_clients () =
  with_server ok_handler (fun server ->
      let port = S.Server.port server in
      let per_domain = 20 in
      let runner () =
        match S.Client.connect ~host ~port () with
        | Error _ -> 0
        | Ok conn ->
            let ok = ref 0 in
            for _ = 1 to per_domain do
              match S.Client.request conn ~meth:"GET" ~target:"/" () with
              | Ok r when r.H.status = 200 -> incr ok
              | _ -> ()
            done;
            S.Client.close conn;
            !ok
      in
      let domains = List.init 6 (fun _ -> Domain.spawn runner) in
      let total = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
      checki "every request answered" (6 * per_domain) total)

(* ---------------- the JSON API over sockets ---------------- *)

let with_api ?(epsilon = 100.0) ?(api_config = S.Api.default_config) f =
  let svc = service ~epsilon () in
  let api = S.Api.create ~config:api_config ~service:svc () in
  let server = S.Server.start ~handler:(S.Api.handler api) () in
  Fun.protect
    ~finally:(fun () ->
      S.Server.stop server;
      S.Api.join api)
    (fun () -> f svc api (S.Server.port server))

let submit_json s = S.Workload.submission_to_json s

let test_api_submit_and_poll () =
  with_api (fun svc api port ->
      (match S.Client.post_json ~host ~port ~json:(submit_json (sub ~epsilon:0.5 "top1")) "/v1/queries" with
      | Ok r ->
          checki "accepted" 202 r.H.status;
          checkb "index assigned" true (contains r.H.resp_body "\"index\":0")
      | Error m -> Alcotest.fail m);
      let drained () =
        match S.Client.get ~host ~port "/v1/queries/0" with
        | Ok r -> contains r.H.resp_body "\"status\":\"executed\""
        | Error _ -> false
      in
      checkb "poll reaches executed" true (wait_until drained);
      (match S.Client.get ~host ~port "/healthz" with
      | Ok r ->
          checki "healthy" 200 r.H.status;
          checkb "nothing pending" true (contains r.H.resp_body "\"pending\":0")
      | Error m -> Alcotest.fail m);
      (match S.Client.get ~host ~port "/v1/queries/7" with
      | Ok r -> checki "unknown index" 404 r.H.status
      | Error m -> Alcotest.fail m);
      (match S.Client.get ~host ~port "/nope" with
      | Ok r -> checki "unknown endpoint" 404 r.H.status
      | Error m -> Alcotest.fail m);
      (match S.Client.post ~host ~port ~body:"" "/healthz" with
      | Ok r -> checki "wrong method" 405 r.H.status
      | Error m -> Alcotest.fail m);
      (match S.Client.post ~host ~port ~body:"{not json" "/v1/queries" with
      | Ok r -> checki "malformed body" 400 r.H.status
      | Error m -> Alcotest.fail m);
      (match S.Client.post ~host ~port ~body:"" "/v1/stop" with
      | Ok r -> checkb "stop acknowledged" true (contains r.H.resp_body "true")
      | Error m -> Alcotest.fail m);
      checkb "stop requested" true (S.Api.stop_requested api);
      checkb "chain verifies" true (S.Service.chain_verifies svc))

let test_api_budget_429 () =
  with_api ~epsilon:0.3 (fun svc _api port ->
      let before = S.Service.budget_left svc in
      (match
         S.Client.post_json ~host ~port
           ~json:(submit_json (sub ~epsilon:0.5 "top1"))
           "/v1/queries"
       with
      | Ok r ->
          checki "over-budget refused" 429 r.H.status;
          checkb "names budget" true (contains r.H.resp_body "budget")
      | Error m -> Alcotest.fail m);
      checkb "429 left the budget untouched" true
        (B.equal before (S.Service.budget_left svc));
      checki "nothing was enqueued" 0 (S.Service.submitted svc);
      (match
         S.Client.post_json ~host ~port
           ~json:(submit_json (sub ~epsilon:0.1 "top1"))
           "/v1/queries"
       with
      | Ok r -> checki "affordable query accepted" 202 r.H.status
      | Error m -> Alcotest.fail m);
      checkb "affordable query executes" true
        (wait_until (fun () ->
             match S.Service.record svc 0 with
             | Some { S.Lifecycle.status = S.Lifecycle.Executed _; _ } -> true
             | _ -> false)))

let test_api_equivalence () =
  (* The determinism boundary: the same submissions produce byte-identical
     canonical lifecycle records whether they arrive over a socket or are
     run in-process — however the executor happened to batch them. *)
  let subs =
    [
      sub ~epsilon:0.5 "top1";
      sub ~epsilon:0.4 "median";
      sub ~epsilon:0.5 "top1";
      (* identical: must be a cache hit on both paths *)
    ]
  in
  let reference = service () in
  let ref_records =
    S.Service.run_workload reference
      {
        S.Workload.budget = None;
        devices = None;
        seed = None;
        epochs = None;
        submissions = subs;
      }
  in
  with_api (fun svc _api port ->
      List.iter
        (fun s ->
          match
            S.Client.post_json ~host ~port ~json:(submit_json s) "/v1/queries"
          with
          | Ok r -> checki "accepted" 202 r.H.status
          | Error m -> Alcotest.fail m)
        subs;
      checkb "all drained" true
        (wait_until (fun () ->
             S.Service.pending svc = 0
             && List.length (S.Service.history svc) = List.length subs));
      checks "byte-identical lifecycle records"
        (S.Lifecycle.records_to_string ref_records)
        (S.Lifecycle.records_to_string (S.Service.history svc));
      checkb "identical remaining budget" true
        (B.equal
           (S.Service.budget_left reference)
           (S.Service.budget_left svc));
      (* And the wire form agrees with a locally-serialized canonical list. *)
      match S.Client.get ~host ~port "/v1/records" with
      | Ok r ->
          checks "records endpoint serves the canonical form"
            (J.to_string
               (J.List
                  (List.map (S.Lifecycle.to_json ~timings:false) ref_records))
            ^ "\n")
            r.H.resp_body
      | Error m -> Alcotest.fail m)

let test_api_graceful_stop_drains () =
  with_api (fun svc api port ->
      List.iter
        (fun s ->
          match
            S.Client.post_json ~host ~port ~json:(submit_json s) "/v1/queries"
          with
          | Ok r -> checki "accepted" 202 r.H.status
          | Error m -> Alcotest.fail m)
        [ sub ~epsilon:0.5 "top1"; sub ~epsilon:0.4 "median" ];
      (* join = request_stop + final drain: every accepted submission must
         have a record afterwards even if the executor never woke yet. *)
      S.Api.join api;
      checki "every accepted submission drained" 2
        (List.length (S.Service.history svc));
      checkb "chain verifies" true (S.Service.chain_verifies svc))

let test_api_calibration_routes () =
  with_api (fun svc _api port ->
      let put body =
        match S.Client.connect ~host ~port () with
        | Error m -> Alcotest.fail m
        | Ok conn ->
            Fun.protect
              ~finally:(fun () -> S.Client.close conn)
              (fun () ->
                match
                  S.Client.request conn ~meth:"PUT" ~body
                    ~target:"/v1/calibration" ()
                with
                | Ok r -> r
                | Error m -> Alcotest.fail m)
      in
      let fp = S.Service.calibration_fingerprint svc in
      (* The health endpoint carries the active fingerprint. *)
      (match S.Client.get ~host ~port "/healthz" with
      | Ok r ->
          checki "healthy" 200 r.H.status;
          checkb "fingerprint in health" true (contains r.H.resp_body fp)
      | Error m -> Alcotest.fail m);
      (* GET returns the full calibration document. *)
      (match S.Client.get ~host ~port "/v1/calibration" with
      | Ok r ->
          checki "calibration served" 200 r.H.status;
          checkb "schema present" true
            (contains r.H.resp_body "arb-calibration/1");
          checkb "fingerprint present" true (contains r.H.resp_body fp)
      | Error m -> Alcotest.fail m);
      (* PUT a recalibration: the response reports the install. *)
      let d = Arb_planner.Cost_model.default in
      let mild =
        Arb_planner.Calibration.make
          {
            d with
            Arb_planner.Cost_model.kg_coeff_time =
              d.Arb_planner.Cost_model.kg_coeff_time *. 1.2;
          }
      in
      let r =
        put (J.to_string (Arb_planner.Calibration.to_json mild))
      in
      checki "install accepted" 200 r.H.status;
      checkb "install changed" true (contains r.H.resp_body "\"changed\":true");
      checks "service fingerprint moved"
        mild.Arb_planner.Calibration.fingerprint
        (S.Service.calibration_fingerprint svc);
      (* Re-PUT of the same file is a no-op. *)
      let r2 =
        put (J.to_string (Arb_planner.Calibration.to_json mild))
      in
      checkb "re-install unchanged" true
        (contains r2.H.resp_body "\"changed\":false");
      (* Malformed and tampered bodies are 400 with the typed reason. *)
      let r3 = put "{not json" in
      checki "malformed body rejected" 400 r3.H.status;
      let r4 =
        put
          (J.to_string
             (J.Obj
                [
                  ("schema", J.String "arb-calibration/1");
                  ("version", J.Int 99);
                  ("fingerprint", J.String "beef");
                  ("constants", Arb_planner.Cost_model.to_json d);
                  ( "provenance",
                    match Arb_planner.Calibration.to_json mild with
                    | J.Obj fields -> List.assoc "provenance" fields
                    | _ -> J.Obj [] );
                ]))
      in
      checki "future version rejected" 400 r4.H.status;
      checkb "version named" true (contains r4.H.resp_body "99");
      (* Method mismatch. *)
      match S.Client.post ~host ~port ~body:"" "/v1/calibration" with
      | Ok r -> checki "POST not supported" 405 r.H.status
      | Error m -> Alcotest.fail m)

let test_api_continual_routes () =
  let svc = service () in
  let engine = Arb_continual.Engine.create ~service:svc () in
  (match
     Arb_continual.Engine.register engine ~carry_state:true
       {
         (sub ~epsilon:0.5 "top1") with
         every = Some 1;
         window =
           Some
             {
               S.Workload.w_epochs = 3;
               w_budget = B.create ~epsilon:2.0 ~delta:1e-5;
               w_compose = Some 3;
             };
       }
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  let api =
    S.Api.create ~extra:(Arb_continual.Routes.handler engine) ~service:svc ()
  in
  let server = S.Server.start ~handler:(S.Api.handler api) () in
  Fun.protect
    ~finally:(fun () ->
      S.Server.stop server;
      S.Api.join api)
    (fun () ->
      let port = S.Server.port server in
      (* Recurring submissions are session-scoped: the one-shot endpoint
         rejects them with a pointer at /v1/sessions. *)
      (match
         S.Client.post_json ~host ~port
           ~json:(submit_json { (sub ~epsilon:0.5 "top1") with every = Some 1 })
           "/v1/queries"
       with
      | Ok r ->
          checki "recurring submit rejected" 400 r.H.status;
          checkb "points at sessions" true (contains r.H.resp_body "session")
      | Error m -> Alcotest.fail m);
      (* Drive an epoch by hand, then read the views back. *)
      (match S.Client.post ~host ~port ~body:"" "/v1/epoch" with
      | Ok r ->
          checki "manual epoch ticks" 200 r.H.status;
          checkb "tick returns records" true
            (contains r.H.resp_body "\"records\"")
      | Error m -> Alcotest.fail m);
      (match S.Client.get ~host ~port "/v1/sessions" with
      | Ok r ->
          checki "sessions index" 200 r.H.status;
          checkb "epoch advanced" true (contains r.H.resp_body "\"epoch\":1");
          checkb "session summarized" true
            (contains r.H.resp_body "\"name\":\"top1\"")
      | Error m -> Alcotest.fail m);
      (match S.Client.get ~host ~port "/v1/sessions/top1" with
      | Ok r ->
          checki "per-session detail" 200 r.H.status;
          checkb "epoch history present" true
            (contains r.H.resp_body "\"history\"")
      | Error m -> Alcotest.fail m);
      (match S.Client.get ~host ~port "/v1/sessions/nope" with
      | Ok r -> checki "unknown session" 404 r.H.status
      | Error m -> Alcotest.fail m);
      (match S.Client.post ~host ~port ~body:"" "/v1/sessions/top1" with
      | Ok r -> checki "wrong method on session" 405 r.H.status
      | Error m -> Alcotest.fail m);
      (* The continual engine shadows /v1/budget with the window detail. *)
      match S.Client.get ~host ~port "/v1/budget" with
      | Ok r ->
          checki "budget still served" 200 r.H.status;
          checkb "live window exposed" true
            (contains r.H.resp_body "\"windows\"")
      | Error m -> Alcotest.fail m)

let () =
  Alcotest.run "http"
    [
      ( "parser",
        [
          Alcotest.test_case "valid GET" `Quick test_parse_get;
          Alcotest.test_case "pipelined requests" `Quick test_parse_pipelined;
          Alcotest.test_case "every prefix is partial" `Quick
            test_every_prefix_is_partial;
          Alcotest.test_case "malformed and oversized inputs rejected" `Quick
            test_rejects;
          Alcotest.test_case "header block limit" `Quick test_header_block_limit;
          Alcotest.test_case "keep-alive semantics" `Quick test_keep_alive;
          Alcotest.test_case "lenient line endings" `Quick
            test_lenient_line_endings;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "basic GET over a socket" `Quick test_e2e_get;
          Alcotest.test_case "keep-alive connection" `Quick test_e2e_keep_alive;
          Alcotest.test_case "accept-edge 429" `Quick test_e2e_accept_edge_busy;
          Alcotest.test_case "whole-request deadline (slowloris)" `Quick
            test_e2e_request_deadline;
          Alcotest.test_case "concurrent clients" `Quick
            test_e2e_concurrent_clients;
        ] );
      ( "api",
        [
          Alcotest.test_case "submit, poll to completion, stop" `Quick
            test_api_submit_and_poll;
          Alcotest.test_case "429 keeps the budget intact" `Quick
            test_api_budget_429;
          Alcotest.test_case "HTTP path == in-process path (byte-identical)"
            `Quick test_api_equivalence;
          Alcotest.test_case "graceful stop drains accepted work" `Quick
            test_api_graceful_stop_drains;
          Alcotest.test_case "continual session routes" `Quick
            test_api_continual_routes;
          Alcotest.test_case "calibration routes" `Quick
            test_api_calibration_routes;
        ] );
    ]
