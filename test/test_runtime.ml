(* End-to-end tests of the execution runtime: protocol phases, integrity
   machinery, failure injection, and semantic agreement with the reference
   interpreter. *)

module R = Arb_runtime
module Q = Arb_queries.Registry
module L = Arb_lang
module P = Arb_planner
module Rng = Arb_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let big_budget = Arb_dp.Budget.create ~epsilon:1.0e7 ~delta:0.5

let config ?(seed = 1L) ?(byz = 0.0) ?(tamper = false) () =
  {
    R.Exec.default_config with
    R.Exec.seed;
    byzantine_fraction = byz;
    tamper_aggregator = tamper;
    budget = big_budget;
  }

let run ?(n = 96) ?(epsilon = 1000.0) ?(seed = 1L) ?(byz = 0.0) ?(tamper = false) name =
  let q = Q.test_instance ~epsilon name in
  let db = Q.random_database (Rng.create 99L) q ~n () in
  let report =
    R.Exec.plan_and_execute (config ~seed ~byz ~tamper ()) ~query:q ~db
  in
  (q, db, report)

let first_int (report : R.Exec.report) =
  match report.R.Exec.outputs with
  | L.Interp.V_int i :: _ -> i
  | v :: _ -> L.Interp.as_int v
  | [] -> Alcotest.fail "no outputs"

let cleartext_mode db =
  let cols = Array.length db.(0) in
  let counts = Array.make cols 0 in
  Array.iter (fun row -> Array.iteri (fun j v -> counts.(j) <- counts.(j) + v) row) db;
  let best = ref 0 in
  Array.iteri (fun j c -> if c > counts.(!best) then best := j) counts;
  (!best, counts)

(* ---------------- semantic agreement (epsilon huge => noise ~ 0) ---------------- *)

let test_top1_matches_mode () =
  let _, db, report = run "top1" in
  let mode, _ = cleartext_mode db in
  checki "DP winner equals the true mode at huge epsilon" mode (first_int report)

let test_topk_matches_true_topk () =
  let _, db, report = run "topK" in
  let _, counts = cleartext_mode db in
  let order = Array.init (Array.length counts) Fun.id in
  Array.sort (fun a b -> compare counts.(b) counts.(a)) order;
  (* Ties at the 5th rank make the exact set ambiguous: require every
     selected category to have at least the 5th-highest count. *)
  let threshold = counts.(order.(4)) in
  let got = List.map L.Interp.as_int report.R.Exec.outputs in
  Alcotest.check Alcotest.int "five winners" 5 (List.length got);
  Alcotest.check Alcotest.int "distinct winners" 5
    (List.length (List.sort_uniq compare got));
  List.iter
    (fun w ->
      checkb
        (Printf.sprintf "winner %d count %d >= threshold %d" w counts.(w) threshold)
        true
        (counts.(w) >= threshold))
    got

let test_median_matches () =
  let _, db, report = run "median" in
  let _, counts = cleartext_mode db in
  let n = Array.length db in
  (* smallest index whose prefix sum crosses n/2, the query's target *)
  let want =
    let acc = ref 0 and res = ref 0 and found = ref false in
    Array.iteri
      (fun i c ->
        acc := !acc + c;
        if (not !found) && 2 * !acc >= n then begin
          res := i;
          found := true
        end)
      counts;
    !res
  in
  let got = first_int report in
  checkb
    (Printf.sprintf "median bucket %d within 1 of %d" got want)
    true
    (abs (got - want) <= 1)

let test_hypotest_exact () =
  let _, db, report = run "hypotest" in
  let _, counts = cleartext_mode db in
  let n = Array.length db in
  let want = if counts.(0) > n / 2 then 1 else 0 in
  checki "hypothesis test decision" want (first_int report)

let test_auction_matches_revenue_max () =
  let _, db, report = run "auction" in
  let _, counts = cleartext_mode db in
  let cols = Array.length counts in
  let suffix = Array.make cols 0 in
  let acc = ref 0 in
  for i = cols - 1 downto 0 do
    acc := !acc + counts.(i);
    suffix.(i) <- !acc
  done;
  let best = ref 0 in
  Array.iteri
    (fun p s -> if (p + 1) * s > (!best + 1) * suffix.(!best) then best := p)
    suffix;
  checki "revenue-maximizing price" !best (first_int report)

let test_cms_close_to_counts () =
  let _, db, report = run "cms" in
  let cols = Array.length db.(0) in
  let counts = Array.make cols 0 in
  Array.iter (fun row -> Array.iteri (fun j v -> counts.(j) <- counts.(j) + v) row) db;
  List.iteri
    (fun i v ->
      let got = L.Interp.as_float v in
      checkb
        (Printf.sprintf "sketch[%d] = %.1f near %d" i got counts.(i))
        true
        (Float.abs (got -. float_of_int counts.(i)) < 2.0))
    report.R.Exec.outputs

let test_gap_output_shape () =
  let _, db, report = run "gap" in
  let mode, _ = cleartext_mode db in
  match report.R.Exec.outputs with
  | [ w; g ] ->
      checki "winner is mode" mode (L.Interp.as_int w);
      checkb "gap positive" true (L.Interp.as_float g > 0.0)
  | _ -> Alcotest.fail "gap must output two values"

let test_secrecy_scales_to_sample () =
  (* phi = 0.25: the sampled count should be around a quarter of the
     category-0 population. *)
  let _, db, report = run ~n:256 "secrecy" in
  let _, counts = cleartext_mode db in
  let got = L.Interp.as_float (List.hd report.R.Exec.outputs) in
  let expected = 0.25 *. float_of_int counts.(0) in
  checkb
    (Printf.sprintf "sampled count %.1f near %.1f" got expected)
    true
    (Float.abs (got -. expected) < 0.6 *. float_of_int counts.(0) +. 5.0)

let test_outputs_match_interpreter_shape () =
  (* Same output arity and types as the cleartext reference. *)
  List.iter
    (fun name ->
      let q, db, report = run name in
      let reference = L.Interp.run q.Q.program ~db (Rng.create 4L) in
      checki (name ^ " output arity") (List.length reference)
        (List.length report.R.Exec.outputs))
    Q.names

(* ---------------- protocol machinery ---------------- *)

let test_certificate_verifies () =
  let _, _, report = run "top1" in
  checkb "certificate ok" true report.R.Exec.certificate_ok;
  checkb "standalone verification" true
    (R.Setup.verify_certificate report.R.Exec.certificate);
  (* Tampering with the payload must break every signature. *)
  let cert = report.R.Exec.certificate in
  let bad = { cert with R.Setup.next_block = "forged" } in
  checkb "tampered certificate fails" false (R.Setup.verify_certificate bad)

let test_budget_is_charged () =
  let q = Q.test_instance ~epsilon:2.0 "top1" in
  let db = Q.random_database (Rng.create 1L) q ~n:64 () in
  let budget = Arb_dp.Budget.create ~epsilon:5.0 ~delta:1.0e-3 in
  let cfg = { (config ()) with R.Exec.budget = budget } in
  let report = R.Exec.plan_and_execute cfg ~query:q ~db in
  checkb "epsilon deducted" true
    (report.R.Exec.budget_left.Arb_dp.Budget.epsilon < 5.0 -. 1.9)

let test_budget_exhaustion_refuses () =
  let q = Q.test_instance ~epsilon:2.0 "top1" in
  let db = Q.random_database (Rng.create 1L) q ~n:64 () in
  let cfg =
    { (config ()) with R.Exec.budget = Arb_dp.Budget.create ~epsilon:1.0 ~delta:1.0 }
  in
  checkb "budget-exhausted refusal" true
    (try
       ignore (R.Exec.plan_and_execute cfg ~query:q ~db);
       false
     with R.Setup.Budget_exhausted -> true)

let test_byzantine_inputs_rejected () =
  let _, db, report = run ~n:128 ~byz:0.2 "top1" in
  checkb "some inputs rejected" true (report.R.Exec.rejected_inputs > 10);
  checki "accepted + rejected = devices" (Array.length db)
    (report.R.Exec.accepted_inputs + report.R.Exec.rejected_inputs);
  (* The malformed (all-ones) uploads were dropped, so the answer still
     matches the honest mode. *)
  let honest_counts = Array.make (Array.length db.(0)) 0 in
  (* recompute with the same byzantine assignment: instead, check that the
     result is a valid category, and that rejections roughly match the 20%
     rate *)
  ignore honest_counts;
  checkb "rejection rate near 20%" true
    (let r = float_of_int report.R.Exec.rejected_inputs /. float_of_int (Array.length db) in
     r > 0.08 && r < 0.35)

let test_audit_catches_tampering () =
  let _, _, honest = run "top1" in
  checkb "honest aggregator passes audit" true honest.R.Exec.audit_ok;
  checkb "honest audits performed" true (honest.R.Exec.trace.R.Trace.audits_performed > 0);
  let _, _, tampered = run ~tamper:true "top1" in
  checkb "tampering detected" false tampered.R.Exec.audit_ok;
  checkb "failures recorded" true (tampered.R.Exec.trace.R.Trace.audits_failed > 0)

let test_fhe_mask_path () =
  (* Force the FHE profile for secrecy: exercises real ciphertext-by-
     ciphertext multiplication plus relinearization in the pipeline. *)
  let q = Q.test_instance ~epsilon:1000.0 "secrecy" in
  let db = Q.random_database (Rng.create 2L) q ~n:96 () in
  let r = P.Search.plan ~limits:P.Constraints.no_limits ~query:q ~n:96 () in
  let plan = Option.get r.P.Search.plan in
  let fhe_plan = { plan with P.Plan.crypto = P.Plan.Fhe; sample_bins = Some 4 } in
  let report = R.Exec.execute (config ()) ~query:q ~plan:fhe_plan ~db in
  checkb "fhe-masked run produces output" true (List.length report.R.Exec.outputs = 1);
  checkb "agg performed a homomorphic multiplication" true
    (report.R.Exec.trace.R.Trace.agg_he_muls > 0)

let test_trace_populated () =
  let _, db, report = run "top1" in
  let t = report.R.Exec.trace in
  checki "every device encrypted once" (Array.length db) t.R.Trace.device_encrypt_ops;
  checkb "aggregator verified proofs" true
    (t.R.Trace.agg_proofs_verified = Array.length db);
  checkb "aggregator summed" true (t.R.Trace.agg_he_adds > 0);
  checkb "keygen committee traced" true (R.Trace.mpc_rounds t R.Trace.Keygen > 0);
  checkb "decryption committee traced" true (R.Trace.mpc_rounds t R.Trace.Decryption > 0);
  checkb "operations committees traced" true (R.Trace.mpc_rounds t R.Trace.Operations > 0);
  checkb "device upload bytes counted" true (t.R.Trace.device_upload_bytes > 0.0)

let test_deterministic_given_seed () =
  let _, _, r1 = run ~seed:42L "top1" in
  let _, _, r2 = run ~seed:42L "top1" in
  checkb "same outputs for same seed" true (r1.R.Exec.outputs = r2.R.Exec.outputs)

let test_device_sum_tree_execution () =
  (* Rewrite the plan's aggregation to the outsourced sum-tree form and
     check the devices perform the additions while the answer is unchanged. *)
  let q = Q.test_instance ~epsilon:1000.0 "top1" in
  let db = Q.random_database (Rng.create 60L) q ~n:96 () in
  let r = P.Search.plan ~limits:P.Constraints.no_limits ~query:q ~n:96 () in
  let plan = Option.get r.P.Search.plan in
  let outsourced =
    {
      plan with
      P.Plan.vignettes =
        List.map
          (fun (v : P.Plan.vignette) ->
            match (v.P.Plan.work, v.P.Plan.location) with
            | P.Plan.W_he_sum w, P.Plan.Aggregator ->
                { P.Plan.location = P.Plan.Committees 12; work = P.Plan.W_he_sum w }
            | _ -> v)
          plan.P.Plan.vignettes;
    }
  in
  let baseline = R.Exec.execute (config ~seed:9L ()) ~query:q ~plan ~db in
  let treed = R.Exec.execute (config ~seed:9L ()) ~query:q ~plan:outsourced ~db in
  checkb "same answer either way" true
    (baseline.R.Exec.outputs = treed.R.Exec.outputs);
  checki "aggregator does no summation when outsourced" 0
    treed.R.Exec.trace.R.Trace.agg_he_adds;
  checkb "devices performed the additions" true
    (treed.R.Exec.trace.R.Trace.device_tree_adds >= 90);
  checkb "baseline kept the sum at the aggregator" true
    (baseline.R.Exec.trace.R.Trace.agg_he_adds >= 90
    && baseline.R.Exec.trace.R.Trace.device_tree_adds = 0)

let test_workers_byte_identical () =
  (* The multicore fan-out must not change a single byte: same outputs,
     trace rendering, audit root and certificate at any worker count —
     including when the plan outsources the sum to a device tree, whose
     group folds also run on the worker pool. *)
  let q = Q.test_instance ~epsilon:1000.0 "top1" in
  let db = Q.random_database (Rng.create 61L) q ~n:96 () in
  let r = P.Search.plan ~limits:P.Constraints.no_limits ~query:q ~n:96 () in
  let plan = Option.get r.P.Search.plan in
  let outsourced =
    {
      plan with
      P.Plan.vignettes =
        List.map
          (fun (v : P.Plan.vignette) ->
            match (v.P.Plan.work, v.P.Plan.location) with
            | P.Plan.W_he_sum w, P.Plan.Aggregator ->
                { P.Plan.location = P.Plan.Committees 12; work = P.Plan.W_he_sum w }
            | _ -> v)
          plan.P.Plan.vignettes;
    }
  in
  let run_with ?(sharding = R.Exec.Full) plan workers =
    R.Exec.execute
      { (config ~seed:5L ()) with R.Exec.workers; sharding }
      ~query:q ~plan ~db
  in
  List.iter
    (fun plan ->
      let base = run_with plan 1 in
      List.iter
        (fun workers ->
          let alt = run_with plan workers in
          checkb
            (Printf.sprintf "outputs identical at %d workers" workers)
            true
            (base.R.Exec.outputs = alt.R.Exec.outputs);
          Alcotest.check Alcotest.string
            (Printf.sprintf "trace pp identical at %d workers" workers)
            (Format.asprintf "%a" R.Trace.pp base.R.Exec.trace)
            (Format.asprintf "%a" R.Trace.pp alt.R.Exec.trace);
          Alcotest.check Alcotest.string
            (Printf.sprintf "trace json identical at %d workers" workers)
            (Arb_util.Json.to_string (R.Trace.to_json base.R.Exec.trace))
            (Arb_util.Json.to_string (R.Trace.to_json alt.R.Exec.trace));
          checkb
            (Printf.sprintf "audit root identical at %d workers" workers)
            true
            (String.equal base.R.Exec.audit_root alt.R.Exec.audit_root);
          checkb
            (Printf.sprintf "certificate identical at %d workers" workers)
            true
            (base.R.Exec.certificate = alt.R.Exec.certificate))
        [ 2; 3 ];
      (* Sharded mode makes the same promise: worker count and re-runs at a
         fixed seed change nothing observable. *)
      let sharding = R.Exec.Sharded { cohort_size = 24; sampled_cohorts = 2 } in
      let sbase = run_with ~sharding plan 1 in
      List.iter
        (fun workers ->
          let alt = run_with ~sharding plan workers in
          checkb
            (Printf.sprintf "sharded outputs identical at %d workers" workers)
            true
            (sbase.R.Exec.outputs = alt.R.Exec.outputs);
          Alcotest.check Alcotest.string
            (Printf.sprintf "sharded trace json identical at %d workers" workers)
            (Arb_util.Json.to_string (R.Trace.to_json sbase.R.Exec.trace))
            (Arb_util.Json.to_string (R.Trace.to_json alt.R.Exec.trace));
          checkb
            (Printf.sprintf "sharded audit root identical at %d workers" workers)
            true
            (String.equal sbase.R.Exec.audit_root alt.R.Exec.audit_root);
          checkb
            (Printf.sprintf "sharded certificate identical at %d workers" workers)
            true
            (sbase.R.Exec.certificate = alt.R.Exec.certificate))
        [ 1; 2; 3 ])
    [ plan; outsourced ]

let test_sortition_spot_checks () =
  let _, _, report = run "top1" in
  checkb "devices verified committee membership" true
    (report.R.Exec.trace.R.Trace.sortition_checks > 0)

let test_churn_reassignment () =
  let q = Q.test_instance ~epsilon:1000.0 "top1" in
  let db = Q.random_database (Rng.create 50L) q ~n:96 () in
  (* No churn: no reassignments. *)
  let calm = R.Exec.plan_and_execute (config ~seed:5L ()) ~query:q ~db in
  checki "no reassignment without churn" 0
    calm.R.Exec.trace.R.Trace.committees_reassigned;
  (* Heavy churn: reassignments happen (or, rarely, the first committee
     keeps quorum); the run must still complete with the right answer. *)
  let stormy_cfg = { (config ~seed:6L ()) with R.Exec.churn = 0.7 } in
  let reassigned = ref 0 and completed = ref 0 in
  for seed = 1 to 8 do
    match
      R.Exec.plan_and_execute
        { stormy_cfg with R.Exec.seed = Int64.of_int (100 + seed) }
        ~query:q ~db
    with
    | report ->
        incr completed;
        reassigned := !reassigned + report.R.Exec.trace.R.Trace.committees_reassigned
    | exception R.Exec.Execution_error _ -> () (* catastrophic churn path *)
  done;
  checkb "some runs complete under churn" true (!completed >= 2);
  checkb "reassignment path exercised" true (!reassigned > 0)

let test_catastrophic_churn_aborts () =
  let q = Q.test_instance ~epsilon:1000.0 "top1" in
  let db = Q.random_database (Rng.create 51L) q ~n:96 () in
  let cfg = { (config ~seed:7L ()) with R.Exec.churn = 1.0 } in
  checkb "total churn aborts cleanly" true
    (try
       ignore (R.Exec.plan_and_execute cfg ~query:q ~db);
       false
     with R.Exec.Execution_error _ -> true)

let test_report_wall_clocks () =
  let q = Q.test_instance ~epsilon:1000.0 "top1" in
  let db = Q.random_database (Rng.create 97L) q ~n:96 () in
  let lan_cfg = { (config ~seed:18L ()) with R.Exec.latency = R.Net.lan } in
  let geo_cfg = { (config ~seed:18L ()) with R.Exec.latency = R.Net.geo_distributed } in
  let lan = R.Exec.plan_and_execute lan_cfg ~query:q ~db in
  let geo = R.Exec.plan_and_execute geo_cfg ~query:q ~db in
  List.iter2
    (fun (k1, t_lan) (k2, t_geo) ->
      checkb "same kinds" true (k1 = k2);
      if t_lan > 0.0 then
        checkb "geo wall clock dominates lan" true (t_geo > t_lan))
    lan.R.Exec.committee_wall_clock geo.R.Exec.committee_wall_clock

let test_geo_profile_slower () =
  let rounds = 500 and compute = 10.0 in
  let lan = R.Net.mpc_wall_clock R.Net.lan ~rounds ~compute in
  let geo = R.Net.mpc_wall_clock R.Net.geo_distributed ~rounds ~compute in
  let slow =
    R.Net.mpc_wall_clock (R.Net.with_slow_devices R.Net.lan ~factor:2.0) ~rounds ~compute
  in
  checkb "geo slower than lan" true (geo > 2.0 *. lan);
  checkb "slow devices slow the committee" true (slow > 1.5 *. lan)

let test_audit_challenge_count () =
  checkb "more steps need more challenges" true
    (R.Audit.challenges_per_device ~steps:10_000 ~devices:10 ~p_max:1e-6
    > R.Audit.challenges_per_device ~steps:10 ~devices:10 ~p_max:1e-6);
  checkb "more auditors need fewer challenges each" true
    (R.Audit.challenges_per_device ~steps:1000 ~devices:1000 ~p_max:1e-6
    < R.Audit.challenges_per_device ~steps:1000 ~devices:10 ~p_max:1e-6)

let test_runtime_rejects_uncertifiable () =
  let q =
    {
      Q.name = "leak"; action = ""; source = "";
      program =
        {
          L.Ast.name = "leak";
          body = L.Parser.parse_stmt "a = sum(db); output(a[0]);";
          row = L.Ast.One_hot 4;
          epsilon = 1.0;
        };
      categories = 4; uses_em = false; error_tolerance = None;
    }
  in
  let db = Array.make 64 [| 1; 0; 0; 0 |] in
  let plan =
    (* borrow a structurally similar plan *)
    let r =
      P.Search.plan ~limits:P.Constraints.no_limits
        ~query:(Q.test_instance "top1") ~n:64 ()
    in
    Option.get r.P.Search.plan
  in
  checkb "uncertified query refused" true
    (try
       ignore (R.Exec.execute (config ()) ~query:q ~plan ~db);
       false
     with R.Exec.Execution_error _ -> true)

let test_multi_ciphertext_inputs () =
  (* More categories than a single ring holds: each device uploads several
     ciphertexts; the answer must still match the mode. *)
  let q = Q.make ~epsilon:1000.0 ~name:"top1" ~c:160 () in
  let db = Q.random_database (Rng.create 80L) q ~n:96 ~skew:1.5 () in
  let cfg = { (config ~seed:11L ()) with R.Exec.bgv_n = 64 } in
  let report = R.Exec.plan_and_execute cfg ~query:q ~db in
  let mode, _ = cleartext_mode db in
  checki "mode across 3 ciphertext chunks (160 slots / 64-ring)" mode
    (first_int report);
  (* 160 slots over a 64-slot ring = 3 ciphertexts per device. *)
  checki "three encryptions per device" (3 * Array.length db)
    report.R.Exec.trace.R.Trace.device_encrypt_ops

let test_multi_ciphertext_secrecy_fhe () =
  (* Binned + multi-ciphertext + FHE masking together. *)
  let q = Q.make ~epsilon:1000.0 ~name:"secrecy" ~c:40 () in
  let db = Q.random_database (Rng.create 81L) q ~n:128 ~skew:1.5 () in
  let r = P.Search.plan ~limits:P.Constraints.no_limits ~query:q ~n:128 () in
  let plan = Option.get r.P.Search.plan in
  let fhe_plan = { plan with P.Plan.crypto = P.Plan.Fhe; sample_bins = Some 4 } in
  let cfg = { (config ~seed:12L ()) with R.Exec.bgv_n = 64 } in
  (* 40 cols x 4 bins = 160 slots -> 3 chunks at ring 64. *)
  let report = R.Exec.execute cfg ~query:q ~plan:fhe_plan ~db in
  checkb "masked multi-chunk run produced one output" true
    (List.length report.R.Exec.outputs = 1);
  checkb "several homomorphic multiplications" true
    (report.R.Exec.trace.R.Trace.agg_he_muls >= 3)

let test_trace_agrees_with_cost_model_ordering () =
  (* The cost model says EM queries do far more committee (MPC) work than
     Laplace queries; the executed traces must show the same ordering. *)
  let run_trace name =
    let q = Q.test_instance ~epsilon:2.0 name in
    let db = Q.random_database (Rng.create 95L) q ~n:96 () in
    let report = R.Exec.plan_and_execute (config ~seed:16L ()) ~query:q ~db in
    R.Trace.mpc_bytes report.R.Exec.trace R.Trace.Operations
  in
  let em_bytes = run_trace "top1" and lap_bytes = run_trace "bayes" in
  checkb
    (Printf.sprintf "EM ops bytes (%d) exceed Laplace ops bytes (%d)" em_bytes
       lap_bytes)
    true
    (em_bytes > lap_bytes)

let test_noise_committee_parallelism () =
  (* Force a fine noise chunk in the plan: the trace must show one
     operations committee per chunk, and the answer must still be the
     mode. *)
  let q = Q.test_instance ~epsilon:1000.0 "top1" in
  let db = Q.random_database (Rng.create 96L) q ~n:96 () in
  let r = P.Search.plan ~limits:P.Constraints.no_limits ~query:q ~n:96 () in
  let plan = Option.get r.P.Search.plan in
  let chunked =
    {
      plan with
      P.Plan.vignettes =
        plan.P.Plan.vignettes
        @ [ { P.Plan.location = P.Plan.Committees 4;
              work = P.Plan.W_mpc_noise { kind = `Gumbel; count = 4 } } ];
    }
  in
  let report = R.Exec.execute (config ~seed:17L ()) ~query:q ~plan:chunked ~db in
  let mode, _ = cleartext_mode db in
  checki "answer still the mode" mode (first_int report);
  (* 16 categories / chunk 4 = 4 noise committees + the main ops engine. *)
  let ops_committees =
    List.length
      (List.filter (fun (k, _) -> k = R.Trace.Operations)
         report.R.Exec.trace.R.Trace.committee_costs)
  in
  checkb
    (Printf.sprintf "several operations committees traced (%d)" ops_committees)
    true (ops_committees >= 5)

(* ---------------- independent verification ---------------- *)

let test_verify_honest_run () =
  let q = Q.test_instance ~epsilon:1.0 "top1" in
  let db = Q.random_database (Rng.create 90L) q ~n:96 () in
  let r = P.Search.plan ~limits:P.Constraints.no_limits ~query:q ~n:96 () in
  let plan = Option.get r.P.Search.plan in
  let budget_before = Arb_dp.Budget.create ~epsilon:5.0 ~delta:1e-3 in
  let cfg = { (config ~seed:13L ()) with R.Exec.budget = budget_before } in
  let report = R.Exec.execute cfg ~query:q ~plan ~db in
  let findings =
    R.Verify.verify_report ~query:q ~plan ~budget_before ~n_devices:96 report
  in
  checkb
    (Format.asprintf "all checks pass:@.%a" R.Verify.pp_findings findings)
    true
    (R.Verify.all_ok findings)

let test_verify_catches_wrong_plan () =
  let q = Q.test_instance ~epsilon:1.0 "top1" in
  let db = Q.random_database (Rng.create 91L) q ~n:96 () in
  let r = P.Search.plan ~limits:P.Constraints.no_limits ~query:q ~n:96 () in
  let plan = Option.get r.P.Search.plan in
  let budget_before = Arb_dp.Budget.create ~epsilon:5.0 ~delta:1e-3 in
  let cfg = { (config ~seed:14L ()) with R.Exec.budget = budget_before } in
  let report = R.Exec.execute cfg ~query:q ~plan ~db in
  (* A swapped plan fails the commitment check. *)
  let other = { plan with P.Plan.em_variant = `Exponentiate } in
  let findings =
    R.Verify.verify_report ~query:q ~plan:other ~budget_before ~n_devices:96 report
  in
  checkb "plan substitution detected" false (R.Verify.all_ok findings);
  checkb "exactly the plan-commitment check fails" true
    (List.exists
       (fun f -> f.R.Verify.check = "plan commitment" && not f.R.Verify.ok)
       findings)

let test_verify_catches_tampered_audit () =
  let q = Q.test_instance ~epsilon:1.0 "top1" in
  let db = Q.random_database (Rng.create 92L) q ~n:96 () in
  let r = P.Search.plan ~limits:P.Constraints.no_limits ~query:q ~n:96 () in
  let plan = Option.get r.P.Search.plan in
  let budget_before = Arb_dp.Budget.create ~epsilon:5.0 ~delta:1e-3 in
  let cfg =
    { (config ~seed:15L ~tamper:true ()) with R.Exec.budget = budget_before }
  in
  let report = R.Exec.execute cfg ~query:q ~plan ~db in
  let findings =
    R.Verify.verify_report ~query:q ~plan ~budget_before ~n_devices:96 report
  in
  checkb "tampered run fails verification" false (R.Verify.all_ok findings)

(* ---------------- sessions (query chains, §5.1-5.2) ---------------- *)

let test_session_chain () =
  let q = Q.test_instance ~epsilon:1.0 "top1" in
  let db = Q.random_database (Rng.create 70L) q ~n:96 () in
  let session =
    R.Session.create ~config:(config ())
      ~budget:(Arb_dp.Budget.create ~epsilon:2.5 ~delta:1.0e-3) ~db ()
  in
  (* Two queries fit the 2.5-epsilon budget; the third must be refused. *)
  (match R.Session.run session q with
  | Ok r1 ->
      checki "first query is round 1" 1 r1.R.Session.query_index;
      Alcotest.check Alcotest.string "genesis block" "genesis" r1.R.Session.block_used
  | Error m -> Alcotest.fail m);
  (match R.Session.run session q with
  | Ok r2 ->
      checki "second query is round 2" 2 r2.R.Session.query_index;
      checkb "second round uses the minted block" true
        (r2.R.Session.block_used <> "genesis")
  | Error m -> Alcotest.fail m);
  (match R.Session.run session q with
  | Ok _ -> Alcotest.fail "third query should be refused"
  | Error m -> checkb "refusal mentions the budget" true
      (String.length m > 0));
  checki "two queries ran" 2 (R.Session.queries_run session);
  checkb "remaining budget 0.5" true
    (Float.abs ((R.Session.budget_left session).Arb_dp.Budget.epsilon -. 0.5) < 1e-9);
  checkb "certificate chain verifies" true (R.Session.chain_verifies session)

let test_session_blocks_differ () =
  (* Different queries in the chain get different sortition blocks, so the
     committees differ (no grinding across rounds). *)
  let q = Q.test_instance ~epsilon:0.5 "top1" in
  let db = Q.random_database (Rng.create 71L) q ~n:96 () in
  let session =
    R.Session.create ~config:(config ())
      ~budget:(Arb_dp.Budget.create ~epsilon:10.0 ~delta:1.0e-2) ~db ()
  in
  let blocks =
    List.filter_map
      (fun _ ->
        match R.Session.run session q with
        | Ok r -> Some r.R.Session.block_used
        | Error _ -> None)
      [ (); (); () ]
  in
  checki "three rounds" 3 (List.length blocks);
  checki "all blocks distinct" 3 (List.length (List.sort_uniq compare blocks))

let test_session_round_limit () =
  let q = Q.test_instance ~epsilon:0.001 "top1" in
  let db = Q.random_database (Rng.create 72L) q ~n:96 () in
  let session =
    R.Session.create ~config:(config ()) ~max_rounds:2
      ~budget:(Arb_dp.Budget.create ~epsilon:100.0 ~delta:1.0) ~db ()
  in
  (match R.Session.run session q with Ok _ -> () | Error m -> Alcotest.fail m);
  (match R.Session.run session q with Ok _ -> () | Error m -> Alcotest.fail m);
  match R.Session.run session q with
  | Ok _ -> Alcotest.fail "round limit must bind"
  | Error m -> checkb "mentions the round limit" true (String.length m > 10)

(* ---------------- sampled-vs-full differential (approximation) -------- *)

let test_sampled_vs_full_within_est_error () =
  (* The tolerance winner executes a PRF-derived device sample; its
     declassified answer must stay within the priced est_error bound of
     the full run's answer, on both heavy hitters and quantiles. *)
  let n = 20_000 in
  let goal = P.Constraints.Min_part_exp_time in
  let sharded =
    {
      R.Exec.default_config with
      R.Exec.seed = 3L;
      budget = big_budget;
      sharding = R.Exec.Sharded { cohort_size = 1_024; sampled_cohorts = 1 };
    }
  in
  let check_query name measure =
    let q = Q.test_instance ~epsilon:1.0 name in
    let src = { R.Exec.n_devices = n; row = Q.device_source ~seed:7L q } in
    let plan_with tol =
      let limits =
        P.Constraints.with_error_tolerance P.Constraints.no_limits tol
      in
      let r = P.Search.plan ~goal ~limits ~query:q ~n () in
      match (r.P.Search.plan, r.P.Search.metrics) with
      | Some p, Some m -> (p, m)
      | _ -> Alcotest.fail "no plan"
    in
    let p_full, _ = plan_with None in
    let p_samp, m_samp = plan_with (Some 0.1) in
    checkb (name ^ ": tolerance winner samples devices") true
      (p_samp.P.Plan.device_sample <> None);
    let full = R.Exec.execute_source sharded ~query:q ~plan:p_full ~src in
    let samp = R.Exec.execute_source sharded ~query:q ~plan:p_samp ~src in
    let sums = Array.make q.Q.categories 0 in
    for i = 0 to n - 1 do
      Array.iteri (fun j v -> sums.(j) <- sums.(j) + v) (src.R.Exec.row i)
    done;
    let err = measure sums (first_int full) (first_int samp) in
    checkb
      (Printf.sprintf "%s: measured error %.4f within est %.4f" name err
         m_samp.P.Cost_model.est_error)
      true
      (err <= m_samp.P.Cost_model.est_error)
  in
  (* heavy hitters: relative count gap between the full and sampled picks *)
  check_query "top1" (fun sums i_full i_samp ->
      let c_full = sums.(i_full) in
      float_of_int (abs (c_full - sums.(i_samp)))
      /. float_of_int (max 1 c_full));
  (* quantiles: rank-mass distance between the chosen bins' CDF intervals
     (bin i covers [cdf(i-1), cdf(i)]; overlapping bins have distance 0) *)
  check_query "median" (fun sums i_full i_samp ->
      let total = Array.fold_left ( + ) 0 sums in
      let cdf i =
        let acc = ref 0 in
        for j = 0 to i do
          acc := !acc + sums.(j)
        done;
        float_of_int !acc /. float_of_int (max 1 total)
      in
      let lo i = if i = 0 then 0.0 else cdf (i - 1) in
      Float.max 0.0
        (Float.max (lo i_samp -. cdf i_full) (lo i_full -. cdf i_samp)))

let () =
  Alcotest.run "arb_runtime"
    [
      ( "semantics",
        [
          Alcotest.test_case "top1 = mode" `Slow test_top1_matches_mode;
          Alcotest.test_case "topK = true top-5" `Slow test_topk_matches_true_topk;
          Alcotest.test_case "median bucket" `Slow test_median_matches;
          Alcotest.test_case "hypotest decision" `Slow test_hypotest_exact;
          Alcotest.test_case "auction price" `Slow test_auction_matches_revenue_max;
          Alcotest.test_case "cms counts" `Slow test_cms_close_to_counts;
          Alcotest.test_case "gap shape" `Slow test_gap_output_shape;
          Alcotest.test_case "secrecy sampling" `Slow test_secrecy_scales_to_sample;
          Alcotest.test_case "output arity matches interpreter" `Slow
            test_outputs_match_interpreter_shape;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "certificate verifies" `Slow test_certificate_verifies;
          Alcotest.test_case "budget charged" `Slow test_budget_is_charged;
          Alcotest.test_case "budget exhaustion" `Slow test_budget_exhaustion_refuses;
          Alcotest.test_case "byzantine inputs rejected" `Slow
            test_byzantine_inputs_rejected;
          Alcotest.test_case "audit catches tampering" `Slow test_audit_catches_tampering;
          Alcotest.test_case "FHE mask path" `Slow test_fhe_mask_path;
          Alcotest.test_case "trace populated" `Slow test_trace_populated;
          Alcotest.test_case "deterministic given seed" `Slow
            test_deterministic_given_seed;
          Alcotest.test_case "device sum-tree execution" `Slow
            test_device_sum_tree_execution;
          Alcotest.test_case "byte-identical across worker counts" `Slow
            test_workers_byte_identical;
          Alcotest.test_case "sampled-vs-full within est_error" `Slow
            test_sampled_vs_full_within_est_error;
          Alcotest.test_case "sortition spot checks" `Slow test_sortition_spot_checks;
          Alcotest.test_case "churn reassignment" `Slow test_churn_reassignment;
          Alcotest.test_case "catastrophic churn aborts" `Quick
            test_catastrophic_churn_aborts;
          Alcotest.test_case "geo profile slower" `Quick test_geo_profile_slower;
          Alcotest.test_case "report wall clocks" `Slow test_report_wall_clocks;
          Alcotest.test_case "audit challenge counts" `Quick test_audit_challenge_count;
          Alcotest.test_case "uncertified query refused" `Quick
            test_runtime_rejects_uncertifiable;
        ] );
      ( "multi-ciphertext",
        [
          Alcotest.test_case "160 categories over a 64-slot ring" `Slow
            test_multi_ciphertext_inputs;
          Alcotest.test_case "binned secrecy with FHE masking" `Slow
            test_multi_ciphertext_secrecy_fhe;
        ] );
      ( "noise-parallelism",
        [
          Alcotest.test_case "committee-per-chunk noising" `Slow
            test_noise_committee_parallelism;
        ] );
      ( "cost-model-bridge",
        [
          Alcotest.test_case "trace matches cost-model ordering" `Slow
            test_trace_agrees_with_cost_model_ordering;
        ] );
      ( "verify",
        [
          Alcotest.test_case "honest run verifies" `Slow test_verify_honest_run;
          Alcotest.test_case "plan substitution detected" `Slow
            test_verify_catches_wrong_plan;
          Alcotest.test_case "tampered audit detected" `Slow
            test_verify_catches_tampered_audit;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "budget chain + certificates" `Slow test_session_chain;
          Alcotest.test_case "blocks differ per round" `Slow test_session_blocks_differ;
          Alcotest.test_case "round limit R" `Slow test_session_round_limit;
        ] );
    ]
