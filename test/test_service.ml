(* Tests for the multi-tenant analytics service: plan-cache keying and
   persistence, admission control against the shared budget, worker-pool
   determinism, and Plan_io's versioned file persistence. *)

module S = Arb_service
module B = Arb_dp.Budget
module P = Arb_planner
module Q = Arb_queries.Registry

let qtest = QCheck_alcotest.to_alcotest
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  n = 0 || go 0

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "arb-test-%d-%s" (Unix.getpid ()) name)

let tmp_dir name =
  let d = tmp_path name in
  if not (Sys.file_exists d) then Sys.mkdir d 0o755;
  d

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let sub ?categories ?(repeat = 1) ?(goal = P.Constraints.Min_part_exp_time)
    ~epsilon query =
  { S.Workload.query; epsilon; categories; goal; repeat }

let service ?cache ?(epsilon = 100.0) ?(delta = 0.01) ?(devices = 32) ?(seed = 5)
    () =
  S.Service.create ?cache
    ~budget:(B.create ~epsilon ~delta)
    ~devices ~seed ()

(* ---------------- Plan_io file persistence ---------------- *)

let plan_of name =
  let q = Q.test_instance name in
  match (P.Search.plan ~query:q ~n:100_000 ()).P.Search.plan with
  | Some p -> p
  | None -> Alcotest.fail ("no plan for " ^ name)

let test_plan_io_roundtrip () =
  let plan = plan_of "top1" in
  let path = tmp_path "roundtrip.json" in
  P.Plan_io.save_plan path plan;
  (match P.Plan_io.load_plan path with
  | Ok plan' -> checkb "same plan back" true (plan = plan')
  | Error m -> Alcotest.fail m);
  Sys.remove path

let test_plan_io_rejects_malformed () =
  (match P.Plan_io.load_plan (tmp_path "does-not-exist.json") with
  | Ok _ -> Alcotest.fail "loaded a missing file"
  | Error _ -> ());
  let garbage = tmp_path "garbage.json" in
  write_file garbage "this is { not json";
  (match P.Plan_io.load_plan garbage with
  | Ok _ -> Alcotest.fail "loaded garbage"
  | Error m -> checkb "mentions malformed JSON" true (contains m "malformed"));
  Sys.remove garbage;
  let unversioned = tmp_path "unversioned.json" in
  write_file unversioned "{\"plan\": {}}";
  (match P.Plan_io.load_plan unversioned with
  | Ok _ -> Alcotest.fail "loaded a file without formatVersion"
  | Error m -> checkb "mentions formatVersion" true (contains m "formatVersion"));
  Sys.remove unversioned;
  let stale = tmp_path "stale.json" in
  write_file stale "{\"formatVersion\": 999, \"plan\": {}}";
  (match P.Plan_io.load_plan stale with
  | Ok _ -> Alcotest.fail "loaded a version-mismatched file"
  | Error m -> checkb "mentions the version" true (contains m "999"));
  Sys.remove stale;
  let truncated = tmp_path "truncated.json" in
  write_file truncated "{\"formatVersion\": 1, \"plan\": {\"query\": \"x\"}}";
  match P.Plan_io.load_plan truncated with
  | Ok _ -> Alcotest.fail "loaded a plan missing fields"
  | Error m ->
      checkb "mentions the bad plan" true (contains m "bad plan");
      Sys.remove truncated

(* ---------------- cache keying ---------------- *)

let test_cache_key_canonicalization () =
  let goal = P.Constraints.Min_part_exp_time in
  let q = Q.test_instance "top1" in
  let key1 = S.Cache.key ~goal ~query:q ~n:1000 () in
  let key2 = S.Cache.key ~goal ~query:(Q.test_instance "top1") ~n:1000 () in
  checks "same inputs, same key" key1 key2;
  (* The registry name is metadata, not part of the key: a renamed query
     with the same program shares the entry. *)
  let renamed = { q with Q.name = "renamed"; action = "other action" } in
  checks "name is not part of the key" key1
    (S.Cache.key ~goal ~query:renamed ~n:1000 ());
  let different =
    [
      S.Cache.key ~goal ~query:q ~n:1001 ();
      S.Cache.key ~goal:P.Constraints.Min_agg_bytes ~query:q ~n:1000 ();
      S.Cache.key ~goal ~query:(Q.test_instance ~epsilon:0.7 "top1") ~n:1000 ();
      S.Cache.key ~goal ~query:(Q.make ~name:"top1" ~c:8 ()) ~n:1000 ();
      S.Cache.key ~goal ~query:(Q.test_instance "median") ~n:1000 ();
      S.Cache.key ~limits:P.Constraints.evaluation_limits ~goal ~query:q
        ~n:1000 ();
    ]
  in
  List.iteri
    (fun i k ->
      checkb (Printf.sprintf "variant %d differs" i) false (String.equal key1 k))
    different;
  (* Distinct variants are also pairwise distinct. *)
  let uniq = List.sort_uniq compare different in
  checki "no collisions among variants" (List.length different)
    (List.length uniq)

let test_cache_disk_persistence () =
  let dir = tmp_dir "cache-persist" in
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  let q = Q.test_instance "top1" in
  let goal = P.Constraints.Min_part_exp_time in
  let key = S.Cache.key ~goal ~query:q ~n:100_000 () in
  let r = P.Search.plan ~query:q ~n:100_000 () in
  let entry =
    match (r.P.Search.plan, r.P.Search.metrics) with
    | Some plan, Some metrics -> { S.Cache.plan; metrics }
    | _ -> Alcotest.fail "no plan"
  in
  let c1 = S.Cache.create ~dir () in
  S.Cache.add c1 key ~query_name:"top1" entry;
  checkb "hit in the writing cache" true (S.Cache.mem c1 key);
  (* A fresh cache over the same directory revives the entry. *)
  let c2 = S.Cache.create ~dir () in
  (match S.Cache.find c2 key with
  | Some e -> checkb "revived plan equals original" true (e.S.Cache.plan = entry.S.Cache.plan)
  | None -> Alcotest.fail "persisted entry not found");
  checki "revival counted" 1 (S.Cache.revived c2);
  (* Corrupt the file: the entry becomes a miss, never an exception. *)
  write_file (Filename.concat dir (key ^ ".json")) "{corrupt";
  let c3 = S.Cache.create ~dir () in
  checkb "corrupt file is a miss" true (S.Cache.find c3 key = None)

(* ---------------- service lifecycle ---------------- *)

let test_service_cache_hits () =
  let t = service () in
  let records =
    S.Service.run_workload t
      {
        S.Workload.budget = None;
        devices = None;
        seed = None;
        submissions = [ sub ~epsilon:0.5 ~repeat:3 "top1" ];
      }
  in
  checki "three records" 3 (List.length records);
  List.iteri
    (fun i r ->
      checki "indices in submission order" i r.S.Lifecycle.index;
      checks "all executed" "executed" (S.Lifecycle.status_name r.S.Lifecycle.status);
      checkb
        (Printf.sprintf "submission %d cache label" i)
        (i > 0) r.S.Lifecycle.cache_hit)
    records;
  let c = S.Service.counters t in
  checki "one cold search" 1 c.S.Lifecycle.planned;
  checki "two hits" 2 c.S.Lifecycle.cache_hits;
  checki "session advanced" 3 (S.Service.queries_executed t);
  checkb "chain verifies" true (S.Service.chain_verifies t)

let test_admission_refuses_midworkload () =
  (* Budget covers exactly two queries at eps 0.5; the third (and a later
     affordable-looking retry) must be refused before planning, leaving
     the balance and the chain exactly as after the second execution. *)
  let t = service ~epsilon:1.0 ~delta:0.01 () in
  let records =
    S.Service.run_workload t
      {
        S.Workload.budget = None;
        devices = None;
        seed = None;
        submissions = [ sub ~epsilon:0.5 ~repeat:4 "top1" ];
      }
  in
  let statuses =
    List.map (fun r -> S.Lifecycle.status_name r.S.Lifecycle.status) records
  in
  Alcotest.(check (list string))
    "two executed, two refused"
    [ "executed"; "executed"; "refused"; "refused" ]
    statuses;
  checki "only two queries on the chain" 2 (S.Service.queries_executed t);
  checkb "chain verifies" true (S.Service.chain_verifies t);
  let balance = S.Service.budget_left t in
  checkb "epsilon fully spent" true (Float.abs balance.B.epsilon < 1e-9);
  List.iter
    (fun r ->
      match r.S.Lifecycle.status with
      | S.Lifecycle.Refused reason ->
          checkb "reason names the budget" true (contains reason "budget");
          checkb "refusal leaves balance untouched" true
            (B.equal r.S.Lifecycle.budget_before r.S.Lifecycle.budget_after);
          checkb "refused before planning" true
            (r.S.Lifecycle.timings.S.Lifecycle.plan_s = 0.0)
      | _ -> ())
    records

let test_admission_refuses_before_any_execution () =
  let budget = B.create ~epsilon:0.1 ~delta:0.01 in
  let t = S.Service.create ~budget ~devices:32 ~seed:5 () in
  ignore (S.Service.submit t (sub ~epsilon:0.5 "top1"));
  let records = S.Service.drain t in
  checki "one record" 1 (List.length records);
  (match records with
  | [ r ] ->
      checks "refused" "refused" (S.Lifecycle.status_name r.S.Lifecycle.status)
  | _ -> assert false);
  checkb "budget byte-identical" true (B.equal budget (S.Service.budget_left t));
  checki "nothing executed" 0 (S.Service.queries_executed t);
  checkb "empty chain verifies" true (S.Service.chain_verifies t)

let test_unknown_query_refused () =
  let t = service () in
  ignore (S.Service.submit t (sub ~epsilon:0.5 "no-such-query"));
  match S.Service.drain t with
  | [ r ] -> (
      match r.S.Lifecycle.status with
      | S.Lifecycle.Refused reason ->
          checkb "reason names the query" true (contains reason "no-such-query")
      | _ -> Alcotest.fail "expected a refusal")
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 record, got %d" (List.length rs))

let test_empty_drain () =
  let t = service () in
  checki "no records" 0 (List.length (S.Service.drain t));
  checki "no pending" 0 (S.Service.pending t)

let test_incremental_batches_share_cache () =
  let t = service () in
  ignore (S.Service.submit t (sub ~epsilon:0.5 "top1"));
  let b1 = S.Service.drain t in
  ignore (S.Service.submit t (sub ~epsilon:0.5 "top1"));
  let b2 = S.Service.drain t in
  (match (b1, b2) with
  | [ r1 ], [ r2 ] ->
      checkb "first is cold" false r1.S.Lifecycle.cache_hit;
      checkb "second batch hits the first's plan" true r2.S.Lifecycle.cache_hit;
      checki "indices are service-global" 1 r2.S.Lifecycle.index
  | _ -> Alcotest.fail "expected singleton batches");
  checki "history holds both" 2 (List.length (S.Service.history t))

(* ---------------- determinism across worker counts ---------------- *)

(* A small pool of cheap executable queries the generator draws from. *)
let workload_pool = [| "top1"; "hypotest"; "median"; "gap" |]

let gen_workload =
  QCheck.Gen.(
    let gen_sub =
      map3
        (fun qi eps repeat ->
          sub ~epsilon:(0.2 +. (0.1 *. float_of_int eps)) ~repeat
            workload_pool.(qi))
        (int_bound (Array.length workload_pool - 1))
        (int_bound 3) (int_range 1 2)
    in
    map2
      (fun seed subs -> (seed, subs))
      (int_range 1 10_000)
      (list_size (int_range 1 4) gen_sub))

let arb_workload =
  QCheck.make gen_workload ~print:(fun (seed, subs) ->
      Printf.sprintf "seed=%d workload=[%s]" seed
        (String.concat "; "
           (List.map
              (fun s ->
                Printf.sprintf "%s eps=%g x%d" s.S.Workload.query
                  s.S.Workload.epsilon s.S.Workload.repeat)
              subs)))

let run_at ~workers ~seed subs =
  (* A budget that admits some but usually not all submissions, so the
     property also covers mid-workload refusals. *)
  let t = service ~epsilon:1.5 ~delta:0.01 ~devices:24 ~seed () in
  List.iter (fun s -> ignore (S.Service.submit t s)) subs;
  let records = S.Service.drain ~workers t in
  (S.Lifecycle.records_to_string records, S.Service.budget_left t)

let prop_worker_count_invisible =
  QCheck.Test.make
    ~name:"same workload + seed => identical lifecycle records at any worker count"
    ~count:6 arb_workload
    (fun (seed, subs) ->
      let base, budget1 = run_at ~workers:1 ~seed subs in
      List.for_all
        (fun workers ->
          let records, budget = run_at ~workers ~seed subs in
          String.equal base records && B.equal budget1 budget)
        [ 2; 4 ])

(* ---------------- workload files ---------------- *)

let test_workload_file_roundtrip () =
  let w =
    {
      S.Workload.budget = Some (B.create ~epsilon:3.0 ~delta:1e-6);
      devices = Some 48;
      seed = Some 7;
      submissions =
        [ sub ~epsilon:0.5 ~repeat:2 "top1"; sub ~epsilon:0.4 "median" ];
    }
  in
  let path = tmp_path "workload.json" in
  S.Workload.save path w;
  (match S.Workload.load path with
  | Error m -> Alcotest.fail m
  | Ok w' ->
      checkb "same workload back" true (w = w');
      checki "expansion honors repeat" 3 (List.length (S.Workload.expand w')));
  Sys.remove path

let test_workload_file_rejects () =
  let path = tmp_path "bad-workload.json" in
  write_file path "{\"formatVersion\": 1, \"queries\": [{\"epsilon\": 1}]}";
  (match S.Workload.load path with
  | Ok _ -> Alcotest.fail "loaded a workload entry without a query name"
  | Error m -> checkb "mentions the query field" true (contains m "query"));
  write_file path
    "{\"formatVersion\": 1, \"queries\": [{\"query\": \"top1\", \"goal\": \
     \"warp-speed\"}]}";
  (match S.Workload.load path with
  | Ok _ -> Alcotest.fail "loaded a workload with an unknown goal"
  | Error m -> checkb "mentions the goal" true (contains m "warp-speed"));
  write_file path
    "{\"formatVersion\": 1, \"queries\": [{\"query\": \"top1\", \"repeat\": 0}]}";
  (match S.Workload.load path with
  | Ok _ -> Alcotest.fail "loaded a workload with repeat 0"
  | Error m -> checkb "mentions repeat" true (contains m "repeat"));
  Sys.remove path

let () =
  Alcotest.run "service"
    [
      ( "plan-io",
        [
          Alcotest.test_case "save/load roundtrip" `Quick test_plan_io_roundtrip;
          Alcotest.test_case "malformed files are rejected with Error" `Quick
            test_plan_io_rejects_malformed;
        ] );
      ( "cache",
        [
          Alcotest.test_case "key canonicalization" `Quick
            test_cache_key_canonicalization;
          Alcotest.test_case "disk persistence + corrupt-file tolerance" `Quick
            test_cache_disk_persistence;
        ] );
      ( "admission",
        [
          Alcotest.test_case "budget exhaustion refuses mid-workload" `Quick
            test_admission_refuses_midworkload;
          Alcotest.test_case "refusal before any execution" `Quick
            test_admission_refuses_before_any_execution;
          Alcotest.test_case "unknown query refused" `Quick
            test_unknown_query_refused;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "repeat submissions hit the cache" `Quick
            test_service_cache_hits;
          Alcotest.test_case "empty drain" `Quick test_empty_drain;
          Alcotest.test_case "batches share cache, indices global" `Quick
            test_incremental_batches_share_cache;
        ] );
      ("determinism", [ qtest prop_worker_count_invisible ]);
      ( "workload",
        [
          Alcotest.test_case "file roundtrip" `Quick test_workload_file_roundtrip;
          Alcotest.test_case "malformed workloads rejected" `Quick
            test_workload_file_rejects;
        ] );
    ]
