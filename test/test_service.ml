(* Tests for the multi-tenant analytics service: plan-cache keying and
   persistence, admission control against the shared budget, worker-pool
   determinism, and Plan_io's versioned file persistence. *)

module S = Arb_service
module B = Arb_dp.Budget
module P = Arb_planner
module Q = Arb_queries.Registry

let qtest = QCheck_alcotest.to_alcotest
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  n = 0 || go 0

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "arb-test-%d-%s" (Unix.getpid ()) name)

let tmp_dir name =
  let d = tmp_path name in
  if not (Sys.file_exists d) then Sys.mkdir d 0o755;
  d

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let sub ?categories ?(repeat = 1) ?(goal = P.Constraints.Min_part_exp_time)
    ~epsilon query =
  { S.Workload.query; epsilon; categories; goal; repeat; every = None;
    window = None; tolerance = None }

let service ?cache ?(epsilon = 100.0) ?(delta = 0.01) ?(devices = 32) ?(seed = 5)
    () =
  S.Service.create ?cache
    ~budget:(B.create ~epsilon ~delta)
    ~devices ~seed ()

(* ---------------- Plan_io file persistence ---------------- *)

let plan_of name =
  let q = Q.test_instance name in
  match (P.Search.plan ~query:q ~n:100_000 ()).P.Search.plan with
  | Some p -> p
  | None -> Alcotest.fail ("no plan for " ^ name)

let test_plan_io_roundtrip () =
  let plan = plan_of "top1" in
  let path = tmp_path "roundtrip.json" in
  P.Plan_io.save_plan path plan;
  (match P.Plan_io.load_plan path with
  | Ok plan' -> checkb "same plan back" true (plan = plan')
  | Error m -> Alcotest.fail m);
  Sys.remove path

let test_plan_io_rejects_malformed () =
  (match P.Plan_io.load_plan (tmp_path "does-not-exist.json") with
  | Ok _ -> Alcotest.fail "loaded a missing file"
  | Error _ -> ());
  let garbage = tmp_path "garbage.json" in
  write_file garbage "this is { not json";
  (match P.Plan_io.load_plan garbage with
  | Ok _ -> Alcotest.fail "loaded garbage"
  | Error m -> checkb "mentions malformed JSON" true (contains m "malformed"));
  Sys.remove garbage;
  let unversioned = tmp_path "unversioned.json" in
  write_file unversioned "{\"plan\": {}}";
  (match P.Plan_io.load_plan unversioned with
  | Ok _ -> Alcotest.fail "loaded a file without formatVersion"
  | Error m -> checkb "mentions formatVersion" true (contains m "formatVersion"));
  Sys.remove unversioned;
  let stale = tmp_path "stale.json" in
  write_file stale "{\"formatVersion\": 999, \"plan\": {}}";
  (match P.Plan_io.load_plan stale with
  | Ok _ -> Alcotest.fail "loaded a version-mismatched file"
  | Error m -> checkb "mentions the version" true (contains m "999"));
  Sys.remove stale;
  let truncated = tmp_path "truncated.json" in
  write_file truncated "{\"formatVersion\": 2, \"plan\": {\"query\": \"x\"}}";
  match P.Plan_io.load_plan truncated with
  | Ok _ -> Alcotest.fail "loaded a plan missing fields"
  | Error m ->
      checkb "mentions the bad plan" true (contains m "bad plan");
      Sys.remove truncated

(* ---------------- cache keying ---------------- *)

let test_cache_key_canonicalization () =
  let goal = P.Constraints.Min_part_exp_time in
  let q = Q.test_instance "top1" in
  let key1 = S.Cache.key ~goal ~query:q ~n:1000 () in
  let key2 = S.Cache.key ~goal ~query:(Q.test_instance "top1") ~n:1000 () in
  checks "same inputs, same key" key1 key2;
  (* The registry name is metadata, not part of the key: a renamed query
     with the same program shares the entry. *)
  let renamed = { q with Q.name = "renamed"; action = "other action" } in
  checks "name is not part of the key" key1
    (S.Cache.key ~goal ~query:renamed ~n:1000 ());
  let different =
    [
      S.Cache.key ~goal ~query:q ~n:1001 ();
      S.Cache.key ~goal:P.Constraints.Min_agg_bytes ~query:q ~n:1000 ();
      S.Cache.key ~goal ~query:(Q.test_instance ~epsilon:0.7 "top1") ~n:1000 ();
      S.Cache.key ~goal ~query:(Q.make ~name:"top1" ~c:8 ()) ~n:1000 ();
      S.Cache.key ~goal ~query:(Q.test_instance "median") ~n:1000 ();
      S.Cache.key ~limits:P.Constraints.evaluation_limits ~goal ~query:q
        ~n:1000 ();
    ]
  in
  List.iteri
    (fun i k ->
      checkb (Printf.sprintf "variant %d differs" i) false (String.equal key1 k))
    different;
  (* Distinct variants are also pairwise distinct. *)
  let uniq = List.sort_uniq compare different in
  checki "no collisions among variants" (List.length different)
    (List.length uniq)

let test_cache_disk_persistence () =
  let dir = tmp_dir "cache-persist" in
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  let q = Q.test_instance "top1" in
  let goal = P.Constraints.Min_part_exp_time in
  let key = S.Cache.key ~goal ~query:q ~n:100_000 () in
  let r = P.Search.plan ~query:q ~n:100_000 () in
  let entry =
    match (r.P.Search.plan, r.P.Search.metrics) with
    | Some plan, Some metrics ->
        { S.Cache.plan; metrics; cols = q.Q.categories }
    | _ -> Alcotest.fail "no plan"
  in
  let c1 = S.Cache.create ~dir () in
  S.Cache.add c1 key ~query_name:"top1" entry;
  checkb "hit in the writing cache" true (S.Cache.mem c1 key);
  (* A fresh cache over the same directory revives the entry. *)
  let c2 = S.Cache.create ~dir () in
  (match S.Cache.find c2 key with
  | Some e -> checkb "revived plan equals original" true (e.S.Cache.plan = entry.S.Cache.plan)
  | None -> Alcotest.fail "persisted entry not found");
  checki "revival counted" 1 (S.Cache.revived c2);
  (* Corrupt the file: the entry becomes a miss, never an exception. *)
  write_file (Filename.concat dir (key ^ ".json")) "{corrupt";
  let c3 = S.Cache.create ~dir () in
  checkb "corrupt file is a miss" true (S.Cache.find c3 key = None)

(* ---------------- service lifecycle ---------------- *)

let test_service_cache_hits () =
  let t = service () in
  let records =
    S.Service.run_workload t
      {
        S.Workload.budget = None;
        devices = None;
        seed = None;
        epochs = None;
        submissions = [ sub ~epsilon:0.5 ~repeat:3 "top1" ];
      }
  in
  checki "three records" 3 (List.length records);
  List.iteri
    (fun i r ->
      checki "indices in submission order" i r.S.Lifecycle.index;
      checks "all executed" "executed" (S.Lifecycle.status_name r.S.Lifecycle.status);
      checkb
        (Printf.sprintf "submission %d cache label" i)
        (i > 0) r.S.Lifecycle.cache_hit)
    records;
  let c = S.Service.counters t in
  checki "one cold search" 1 c.S.Lifecycle.planned;
  checki "two hits" 2 c.S.Lifecycle.cache_hits;
  checki "session advanced" 3 (S.Service.queries_executed t);
  checkb "chain verifies" true (S.Service.chain_verifies t)

let test_admission_refuses_midworkload () =
  (* Budget covers exactly two queries at eps 0.5; the third (and a later
     affordable-looking retry) must be refused before planning, leaving
     the balance and the chain exactly as after the second execution. *)
  let t = service ~epsilon:1.0 ~delta:0.01 () in
  let records =
    S.Service.run_workload t
      {
        S.Workload.budget = None;
        devices = None;
        seed = None;
        epochs = None;
        submissions = [ sub ~epsilon:0.5 ~repeat:4 "top1" ];
      }
  in
  let statuses =
    List.map (fun r -> S.Lifecycle.status_name r.S.Lifecycle.status) records
  in
  Alcotest.(check (list string))
    "two executed, two refused"
    [ "executed"; "executed"; "refused"; "refused" ]
    statuses;
  checki "only two queries on the chain" 2 (S.Service.queries_executed t);
  checkb "chain verifies" true (S.Service.chain_verifies t);
  let balance = S.Service.budget_left t in
  checkb "epsilon fully spent" true (Float.abs balance.B.epsilon < 1e-9);
  List.iter
    (fun r ->
      match r.S.Lifecycle.status with
      | S.Lifecycle.Refused reason ->
          checkb "reason names the budget" true (contains reason "budget");
          checkb "refusal leaves balance untouched" true
            (B.equal r.S.Lifecycle.budget_before r.S.Lifecycle.budget_after);
          checkb "refused before planning" true
            (r.S.Lifecycle.timings.S.Lifecycle.plan_s = 0.0)
      | _ -> ())
    records

let test_admission_refuses_before_any_execution () =
  let budget = B.create ~epsilon:0.1 ~delta:0.01 in
  let t = S.Service.create ~budget ~devices:32 ~seed:5 () in
  ignore (S.Service.submit t (sub ~epsilon:0.5 "top1"));
  let records = S.Service.drain t in
  checki "one record" 1 (List.length records);
  (match records with
  | [ r ] ->
      checks "refused" "refused" (S.Lifecycle.status_name r.S.Lifecycle.status)
  | _ -> assert false);
  checkb "budget byte-identical" true (B.equal budget (S.Service.budget_left t));
  checki "nothing executed" 0 (S.Service.queries_executed t);
  checkb "empty chain verifies" true (S.Service.chain_verifies t)

let test_unknown_query_refused () =
  let t = service () in
  ignore (S.Service.submit t (sub ~epsilon:0.5 "no-such-query"));
  match S.Service.drain t with
  | [ r ] -> (
      match r.S.Lifecycle.status with
      | S.Lifecycle.Refused reason ->
          checkb "reason names the query" true (contains reason "no-such-query")
      | _ -> Alcotest.fail "expected a refusal")
  | rs -> Alcotest.fail (Printf.sprintf "expected 1 record, got %d" (List.length rs))

let test_empty_drain () =
  let t = service () in
  checki "no records" 0 (List.length (S.Service.drain t));
  checki "no pending" 0 (S.Service.pending t)

let test_incremental_batches_share_cache () =
  let t = service () in
  ignore (S.Service.submit t (sub ~epsilon:0.5 "top1"));
  let b1 = S.Service.drain t in
  ignore (S.Service.submit t (sub ~epsilon:0.5 "top1"));
  let b2 = S.Service.drain t in
  (match (b1, b2) with
  | [ r1 ], [ r2 ] ->
      checkb "first is cold" false r1.S.Lifecycle.cache_hit;
      checkb "second batch hits the first's plan" true r2.S.Lifecycle.cache_hit;
      checki "indices are service-global" 1 r2.S.Lifecycle.index
  | _ -> Alcotest.fail "expected singleton batches");
  checki "history holds both" 2 (List.length (S.Service.history t))

(* ---------------- determinism across worker counts ---------------- *)

(* A small pool of cheap executable queries the generator draws from. *)
let workload_pool = [| "top1"; "hypotest"; "median"; "gap" |]

let gen_workload =
  QCheck.Gen.(
    let gen_sub =
      map3
        (fun qi eps repeat ->
          sub ~epsilon:(0.2 +. (0.1 *. float_of_int eps)) ~repeat
            workload_pool.(qi))
        (int_bound (Array.length workload_pool - 1))
        (int_bound 3) (int_range 1 2)
    in
    map2
      (fun seed subs -> (seed, subs))
      (int_range 1 10_000)
      (list_size (int_range 1 4) gen_sub))

let arb_workload =
  QCheck.make gen_workload ~print:(fun (seed, subs) ->
      Printf.sprintf "seed=%d workload=[%s]" seed
        (String.concat "; "
           (List.map
              (fun s ->
                Printf.sprintf "%s eps=%g x%d" s.S.Workload.query
                  s.S.Workload.epsilon s.S.Workload.repeat)
              subs)))

let run_at ~workers ~seed subs =
  (* A budget that admits some but usually not all submissions, so the
     property also covers mid-workload refusals. Submissions land in two
     batches with a drain each — the service-level shape of a multi-epoch
     continual run — so determinism must hold across drain boundaries,
     not just within one. *)
  let t = service ~epsilon:1.5 ~delta:0.01 ~devices:24 ~seed () in
  let n = List.length subs in
  let batch1 = List.filteri (fun i _ -> 2 * i < n) subs in
  let batch2 = List.filteri (fun i _ -> 2 * i >= n) subs in
  List.iter (fun s -> ignore (S.Service.submit t s)) batch1;
  ignore (S.Service.drain ~workers t);
  List.iter (fun s -> ignore (S.Service.submit t s)) batch2;
  ignore (S.Service.drain ~workers t);
  ( S.Lifecycle.records_to_string (S.Service.history t),
    S.Service.budget_left t )

let prop_worker_count_invisible =
  QCheck.Test.make
    ~name:"same workload + seed => identical lifecycle records at any worker count"
    ~count:6 arb_workload
    (fun (seed, subs) ->
      let base, budget1 = run_at ~workers:1 ~seed subs in
      List.for_all
        (fun workers ->
          let records, budget = run_at ~workers ~seed subs in
          String.equal base records && B.equal budget1 budget)
        [ 2; 4 ])

(* ---------------- cross-domain safety ---------------- *)

let test_concurrent_submit_stress () =
  (* 4 domains hammer submit concurrently. Unsynchronized, the queue /
     next_index updates interleave and lose submissions or duplicate
     indices; under the service lock every submission gets a distinct
     index and all of them land. *)
  let t = service () in
  let domains_n = 4 and per_domain = 250 in
  let submitter _ =
    Domain.spawn (fun () ->
        List.init per_domain (fun _ ->
            S.Service.submit t (sub ~epsilon:0.5 "top1")))
  in
  let indices =
    List.concat_map Domain.join (List.init domains_n submitter)
  in
  let total = domains_n * per_domain in
  checki "every submission landed" total (S.Service.pending t);
  checki "next index advanced exactly once each" total (S.Service.submitted t);
  let sorted = List.sort_uniq compare indices in
  checki "indices are distinct" total (List.length sorted);
  checki "indices are dense from zero" (total - 1)
    (List.fold_left max (-1) sorted)

let test_try_submit_queue_full () =
  let t = service () in
  (match S.Service.try_submit ~max_queue:2 t (sub ~epsilon:0.5 "top1") with
  | Ok 0 -> ()
  | _ -> Alcotest.fail "first submission should be index 0");
  (match S.Service.try_submit ~max_queue:2 t (sub ~epsilon:0.5 "top1") with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "second submission should be index 1");
  (match S.Service.try_submit ~max_queue:2 t (sub ~epsilon:0.5 "top1") with
  | Error (S.Service.Queue_full 2 as r) ->
      checkb "message names the bound" true
        (contains (S.Service.refusal_message r) "full")
  | _ -> Alcotest.fail "third submission should hit the queue bound");
  checki "refused submission not enqueued" 2 (S.Service.pending t);
  (* repeat counts toward the bound as a whole *)
  match S.Service.try_submit ~max_queue:4 t (sub ~epsilon:0.5 ~repeat:3 "top1") with
  | Error (S.Service.Queue_full _) -> ()
  | _ -> Alcotest.fail "repeat must count toward the queue bound"

let test_try_submit_over_budget () =
  (* Budget affords two eps-0.5 queries. The prescreen must account for
     what is already queued (reservations), not just the session balance,
     and a refusal must leave both untouched. *)
  let budget = B.create ~epsilon:1.0 ~delta:0.01 in
  let t = S.Service.create ~budget ~devices:32 ~seed:5 () in
  (match S.Service.try_submit t (sub ~epsilon:0.5 "top1") with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "first affordable submission refused");
  (match S.Service.try_submit t (sub ~epsilon:0.5 "top1") with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "second affordable submission refused");
  (match S.Service.try_submit t (sub ~epsilon:0.5 "top1") with
  | Error (S.Service.Over_budget _) -> ()
  | Ok _ -> Alcotest.fail "queued reservations must count against the budget"
  | Error _ -> Alcotest.fail "wrong refusal kind");
  checkb "refusals left the balance untouched" true
    (B.equal budget (S.Service.budget_left t));
  checki "only the admitted two are queued" 2 (S.Service.pending t);
  let records = S.Service.drain t in
  checki "both admitted submissions executed" 2
    (List.length
       (List.filter
          (fun r ->
            S.Lifecycle.status_name r.S.Lifecycle.status = "executed")
          records));
  checkb "chain verifies" true (S.Service.chain_verifies t);
  (* After the drain reset the reservations, the balance is authoritative
     again: a third query is now refused on the real balance. *)
  match S.Service.try_submit t (sub ~epsilon:0.5 "top1") with
  | Error (S.Service.Over_budget _) -> ()
  | _ -> Alcotest.fail "spent balance must refuse the next submission"

let test_try_submit_unknown_query_enqueues () =
  (* Unresolvable submissions pass the prescreen so drain can refuse them
     with the same canonical record the workload path produces. *)
  let t = service () in
  (match S.Service.try_submit t (sub ~epsilon:0.5 "no-such-query") with
  | Ok 0 -> ()
  | _ -> Alcotest.fail "unknown query should enqueue for a canonical refusal");
  match S.Service.drain t with
  | [ { S.Lifecycle.status = S.Lifecycle.Refused reason; _ } ] ->
      checkb "drain refused it canonically" true (contains reason "no-such-query")
  | _ -> Alcotest.fail "expected one refusal record"

let test_cache_concurrent_writers () =
  (* Several domains persist entries for the same key at once: per-writer
     tmp names mean no torn files — afterwards the entry file is valid
     JSON a fresh cache revives, and no *.tmp strays remain. *)
  let dir = tmp_dir "cache-races" in
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let q = Q.test_instance "top1" in
  let goal = P.Constraints.Min_part_exp_time in
  let key = S.Cache.key ~goal ~query:q ~n:100_000 () in
  let r = P.Search.plan ~query:q ~n:100_000 () in
  let entry =
    match (r.P.Search.plan, r.P.Search.metrics) with
    | Some plan, Some metrics ->
        { S.Cache.plan; metrics; cols = q.Q.categories }
    | _ -> Alcotest.fail "no plan"
  in
  let cache = S.Cache.create ~dir () in
  let writers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 25 do
              S.Cache.add cache key ~query_name:"top1" entry
            done))
  in
  List.iter Domain.join writers;
  let leftovers =
    List.filter
      (fun f -> Filename.check_suffix f ".tmp")
      (Array.to_list (Sys.readdir dir))
  in
  checki "no stranded tmp files" 0 (List.length leftovers);
  let fresh = S.Cache.create ~dir () in
  (match S.Cache.find fresh key with
  | Some e -> checkb "revived entry intact" true (e.S.Cache.plan = entry.S.Cache.plan)
  | None -> Alcotest.fail "entry file unreadable after concurrent writes")

let test_cache_dir_creation () =
  let root = tmp_path "cache-mkdirp" in
  let nested = Filename.concat (Filename.concat root "a") "b" in
  (* mkdir_p: the whole chain comes into being. *)
  let _ = S.Cache.create ~dir:nested () in
  checkb "nested directory created" true (Sys.is_directory nested);
  (* Concurrent creators of the same fresh directory: the TOCTOU seam —
     everyone must succeed even when another domain wins the mkdir race. *)
  let fresh = Filename.concat (Filename.concat root "c") "d" in
  let creators =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            match S.Cache.create ~dir:fresh () with
            | _ -> true
            | exception _ -> false))
  in
  checkb "all concurrent creators succeed" true
    (List.for_all Domain.join creators);
  checkb "directory exists" true (Sys.is_directory fresh)

let test_cache_tmp_sweep () =
  let dir = tmp_dir "cache-sweep" in
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  write_file (Filename.concat dir "stale.1234.0.tmp") "half-written";
  write_file (Filename.concat dir "deadbeef.json.tmp") "also stale";
  write_file (Filename.concat dir "keep.json") "{}";
  let _ = S.Cache.create ~dir () in
  let files = List.sort compare (Array.to_list (Sys.readdir dir)) in
  Alcotest.(check (list string))
    "tmp files swept, real entries kept" [ "keep.json" ] files

(* ---------------- workload files ---------------- *)

let test_workload_file_roundtrip () =
  let w =
    {
      S.Workload.budget = Some (B.create ~epsilon:3.0 ~delta:1e-6);
      devices = Some 48;
      seed = Some 7;
      epochs = None;
      submissions =
        [ sub ~epsilon:0.5 ~repeat:2 "top1"; sub ~epsilon:0.4 "median" ];
    }
  in
  let path = tmp_path "workload.json" in
  S.Workload.save path w;
  (match S.Workload.load path with
  | Error m -> Alcotest.fail m
  | Ok w' ->
      checkb "same workload back" true (w = w');
      checki "expansion honors repeat" 3 (List.length (S.Workload.expand w')));
  Sys.remove path

let test_workload_file_rejects () =
  let path = tmp_path "bad-workload.json" in
  write_file path "{\"formatVersion\": 2, \"queries\": [{\"epsilon\": 1}]}";
  (match S.Workload.load path with
  | Ok _ -> Alcotest.fail "loaded a workload entry without a query name"
  | Error m -> checkb "mentions the query field" true (contains m "query"));
  write_file path
    "{\"formatVersion\": 2, \"queries\": [{\"query\": \"top1\", \"goal\": \
     \"warp-speed\"}]}";
  (match S.Workload.load path with
  | Ok _ -> Alcotest.fail "loaded a workload with an unknown goal"
  | Error m -> checkb "mentions the goal" true (contains m "warp-speed"));
  write_file path
    "{\"formatVersion\": 2, \"queries\": [{\"query\": \"top1\", \"repeat\": 0}]}";
  (match S.Workload.load path with
  | Ok _ -> Alcotest.fail "loaded a workload with repeat 0"
  | Error m -> checkb "mentions repeat" true (contains m "repeat"));
  Sys.remove path

(* ---------------- calibration installs ---------------- *)

let mild_calibration () =
  (* One field group nudged 20%: every cached entry drifts well under the
     0.5 threshold, so installs re-price in place. *)
  let d = P.Cost_model.default in
  P.Calibration.make
    { d with P.Cost_model.kg_coeff_time = d.P.Cost_model.kg_coeff_time *. 1.2 }

let aggressive_calibration () =
  (* Everything 100x cheaper: far past the threshold, so installs evict. *)
  let d = P.Cost_model.default in
  P.Calibration.make
    {
      d with
      P.Cost_model.felt_bytes = d.P.Cost_model.felt_bytes /. 100.0;
      kg_coeff_time = d.P.Cost_model.kg_coeff_time /. 100.0;
      kg_coeff_bytes = d.P.Cost_model.kg_coeff_bytes /. 100.0;
      dec_coeff_time = d.P.Cost_model.dec_coeff_time /. 100.0;
      round_latency = d.P.Cost_model.round_latency /. 100.0;
      proof_bytes = d.P.Cost_model.proof_bytes /. 100.0;
    }

let cal_workload queries =
  {
    S.Workload.budget = None;
    devices = None;
    seed = None;
    epochs = None;
    submissions = List.map (fun q -> sub ~epsilon:0.5 q) queries;
  }

let test_set_calibration_reprice () =
  let reg = Arb_obs.Metrics.create () in
  let t =
    S.Service.create ~metrics:reg
      ~budget:(B.create ~epsilon:100.0 ~delta:0.01)
      ~devices:32 ~seed:5 ()
  in
  ignore (S.Service.run_workload t (cal_workload [ "top1"; "median" ]));
  let cached = S.Cache.size (S.Service.cache t) in
  checki "two cached plans" 2 cached;
  let before = S.Service.calibration_fingerprint t in
  (* Reinstalling the current calibration is a no-op. *)
  let r0 = S.Service.set_calibration t (S.Service.calibration t) in
  checkb "same fingerprint unchanged" false r0.S.Service.changed;
  checki "no reprices" 0 r0.S.Service.repriced;
  (* A mild drift re-prices every entry in place. *)
  let mild = mild_calibration () in
  let r1 = S.Service.set_calibration t mild in
  checkb "mild install changed" true r1.S.Service.changed;
  checki "mild repriced all" cached r1.S.Service.repriced;
  checki "mild invalidated none" 0 r1.S.Service.invalidated;
  checki "cache intact" cached (S.Cache.size (S.Service.cache t));
  checkb "fingerprint moved" true
    (S.Service.calibration_fingerprint t <> before);
  checkb "repriced counter" true
    (S.Service.calibration_fingerprint t
     = mild.P.Calibration.fingerprint);
  (* An aggressive drift evicts; the next submission re-plans cold. *)
  let planned_before = (S.Service.counters t).S.Lifecycle.planned in
  let r2 = S.Service.set_calibration t (aggressive_calibration ()) in
  checki "aggressive evicted all" cached r2.S.Service.invalidated;
  checki "cache emptied" 0 (S.Cache.size (S.Service.cache t));
  ignore (S.Service.run_workload t (cal_workload [ "top1" ]));
  checki "evicted entry re-planned cold" (planned_before + 1)
    (S.Service.counters t).S.Lifecycle.planned

let test_fixed_calibration_worker_identity () =
  (* Under one fixed calibration file, canonical records are byte-identical
     at any planner worker count. *)
  let calib = mild_calibration () in
  let run workers =
    let t =
      S.Service.create ~calibration:calib
        ~budget:(B.create ~epsilon:100.0 ~delta:0.01)
        ~devices:32 ~seed:5 ()
    in
    List.iter
      (fun q -> ignore (S.Service.submit t (sub ~epsilon:0.5 q)))
      [ "top1"; "median"; "top1" ];
    ignore (S.Service.drain ~workers t);
    S.Lifecycle.records_to_string ~timings:false (S.Service.history t)
  in
  let reference = run 1 in
  List.iter
    (fun w ->
      checks (Printf.sprintf "workers=%d byte-identical" w) reference (run w))
    [ 2; 3 ]

let () =
  Alcotest.run "service"
    [
      ( "plan-io",
        [
          Alcotest.test_case "save/load roundtrip" `Quick test_plan_io_roundtrip;
          Alcotest.test_case "malformed files are rejected with Error" `Quick
            test_plan_io_rejects_malformed;
        ] );
      ( "cache",
        [
          Alcotest.test_case "key canonicalization" `Quick
            test_cache_key_canonicalization;
          Alcotest.test_case "disk persistence + corrupt-file tolerance" `Quick
            test_cache_disk_persistence;
        ] );
      ( "admission",
        [
          Alcotest.test_case "budget exhaustion refuses mid-workload" `Quick
            test_admission_refuses_midworkload;
          Alcotest.test_case "refusal before any execution" `Quick
            test_admission_refuses_before_any_execution;
          Alcotest.test_case "unknown query refused" `Quick
            test_unknown_query_refused;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "repeat submissions hit the cache" `Quick
            test_service_cache_hits;
          Alcotest.test_case "empty drain" `Quick test_empty_drain;
          Alcotest.test_case "batches share cache, indices global" `Quick
            test_incremental_batches_share_cache;
        ] );
      ("determinism", [ qtest prop_worker_count_invisible ]);
      ( "calibration",
        [
          Alcotest.test_case "install re-prices / invalidates the cache"
            `Quick test_set_calibration_reprice;
          Alcotest.test_case "fixed calibration byte-identical across workers"
            `Quick test_fixed_calibration_worker_identity;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "multi-domain submit stress" `Quick
            test_concurrent_submit_stress;
          Alcotest.test_case "try_submit queue bound" `Quick
            test_try_submit_queue_full;
          Alcotest.test_case "try_submit budget prescreen + reservations"
            `Quick test_try_submit_over_budget;
          Alcotest.test_case "unknown queries enqueue for canonical refusal"
            `Quick test_try_submit_unknown_query_enqueues;
          Alcotest.test_case "concurrent cache writers never tear files"
            `Quick test_cache_concurrent_writers;
          Alcotest.test_case "cache dir created recursively, race-tolerant"
            `Quick test_cache_dir_creation;
          Alcotest.test_case "stale tmp files swept on create" `Quick
            test_cache_tmp_sweep;
        ] );
      ( "workload",
        [
          Alcotest.test_case "file roundtrip" `Quick test_workload_file_roundtrip;
          Alcotest.test_case "malformed workloads rejected" `Quick
            test_workload_file_rejects;
        ] );
    ]
