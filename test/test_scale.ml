(* Scale-equivalence suite for the cohort-sharded runtime.

   The fidelity contract (DESIGN.md §11, exec.mli): a [Sharded] run must
   release exactly what the [Full] run releases — bit-identical decrypted
   outputs, budget deduction and signed certificate — because per-device
   randomness is an indexed PRF, sortition is a pure function of (seed, N),
   and unsampled cohorts contribute their exact plaintext sums through one
   real residual ciphertext. These tests run both modes over the same
   indexed population at small N, where "materialize everything" is cheap
   enough to serve as the ground truth. *)

module R = Arb_runtime
module Q = Arb_queries.Registry
module L = Arb_lang
module P = Arb_planner
module Rng = Arb_util.Rng

let qtest = QCheck_alcotest.to_alcotest
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let big_budget = Arb_dp.Budget.create ~epsilon:1.0e7 ~delta:0.5

let config ?(seed = 3L) ?(byz = 0.0) ?(sharding = R.Exec.Full) () =
  {
    R.Exec.default_config with
    R.Exec.seed;
    byzantine_fraction = byz;
    budget = big_budget;
    sharding;
  }

(* One plan per (query, n), shared by both modes — the equivalence claim is
   about execution, so both runs must execute the same plan. *)
let context =
  let cache = Hashtbl.create 8 in
  fun name n ->
    match Hashtbl.find_opt cache (name, n) with
    | Some c -> c
    | None ->
        let q = Q.test_instance ~epsilon:1000.0 name in
        let r = P.Search.plan ~limits:P.Constraints.no_limits ~query:q ~n () in
        let plan =
          match r.P.Search.plan with
          | Some p -> p
          | None -> Alcotest.fail ("no plan for " ^ name)
        in
        let src = { R.Exec.n_devices = n; row = Q.device_source ~seed:77L q } in
        let c = (q, plan, src) in
        Hashtbl.add cache (name, n) c;
        c

let run_mode ~name ~n ~seed ~byz sharding =
  let q, plan, src = context name n in
  R.Exec.execute_source (config ~seed ~byz ~sharding ()) ~query:q ~plan ~src

(* The contract itself: everything the protocol releases is identical. *)
let check_equivalent ~label full sharded =
  checkb (label ^ ": outputs bit-identical") true
    (full.R.Exec.outputs = sharded.R.Exec.outputs);
  checkb (label ^ ": budget deduction identical") true
    (Arb_dp.Budget.equal full.R.Exec.budget_left sharded.R.Exec.budget_left);
  checkb (label ^ ": certificate identical") true
    (full.R.Exec.certificate = sharded.R.Exec.certificate);
  checkb (label ^ ": both certificates verify") true
    (full.R.Exec.certificate_ok && sharded.R.Exec.certificate_ok);
  checkb (label ^ ": both audits pass") true
    (full.R.Exec.audit_ok && sharded.R.Exec.audit_ok);
  checki (label ^ ": accepted inputs identical") full.R.Exec.accepted_inputs
    sharded.R.Exec.accepted_inputs;
  checki (label ^ ": rejected inputs identical") full.R.Exec.rejected_inputs
    sharded.R.Exec.rejected_inputs

let equivalence_combos =
  (* (n, cohort_size, sampled_cohorts): dividing and non-dividing cohort
     sizes, a ragged final cohort, every cohort sampled, and one cohort
     spanning the whole population (the degenerate-but-distinct case). *)
  [
    (64, 16, 2);
    (96, 32, 3);
    (* all 3 cohorts sampled: no residual ciphertext *)
    (100, 17, 2);
    (* 100/17 -> 6 cohorts, last one ragged (15 devices) *)
    (64, 64, 1);
    (* single cohort covering everything *)
    (50, 8, 10);
    (* sampled_cohorts > n_cohorts: clamped to all 7 *)
  ]

let test_sharded_equals_full_clean () =
  List.iter
    (fun name ->
      List.iter
        (fun (n, cohort_size, sampled_cohorts) ->
          let label =
            Printf.sprintf "%s n=%d cohort=%d k=%d" name n cohort_size
              sampled_cohorts
          in
          let full = run_mode ~name ~n ~seed:3L ~byz:0.0 R.Exec.Full in
          let sharded =
            run_mode ~name ~n ~seed:3L ~byz:0.0
              (R.Exec.Sharded { cohort_size; sampled_cohorts })
          in
          check_equivalent ~label full sharded)
        equivalence_combos)
    [ "top1"; "hypotest" ]

let test_sharded_equals_full_byzantine () =
  (* Byzantine flags are per-device PRF draws, so extrapolated cohorts
     reject exactly the devices the full run rejects. *)
  List.iter
    (fun (n, cohort_size, sampled_cohorts) ->
      let label =
        Printf.sprintf "byz top1 n=%d cohort=%d k=%d" n cohort_size
          sampled_cohorts
      in
      let full = run_mode ~name:"top1" ~n ~seed:5L ~byz:0.25 R.Exec.Full in
      let sharded =
        run_mode ~name:"top1" ~n ~seed:5L ~byz:0.25
          (R.Exec.Sharded { cohort_size; sampled_cohorts })
      in
      checkb (label ^ ": some devices were rejected") true
        (full.R.Exec.rejected_inputs > 0);
      check_equivalent ~label full sharded)
    [ (64, 16, 2); (100, 17, 2) ]

let test_sharded_equals_full_median () =
  (* A Bounded-row query exercises the multi-slot encoding path. *)
  let full = run_mode ~name:"median" ~n:64 ~seed:3L ~byz:0.0 R.Exec.Full in
  let sharded =
    run_mode ~name:"median" ~n:64 ~seed:3L ~byz:0.0
      (R.Exec.Sharded { cohort_size = 16; sampled_cohorts = 2 })
  in
  check_equivalent ~label:"median n=64 cohort=16 k=2" full sharded

let test_streaming_materializes_only_sampled () =
  (* A population 40x larger than what the sampled cohorts materialize:
     the gauges must show O(cohort) materialization while the accounting
     still covers every device. *)
  let n = 20_000 in
  let sharded =
    run_mode ~name:"hypotest" ~n ~seed:3L ~byz:0.0
      (R.Exec.Sharded { cohort_size = 256; sampled_cohorts = 2 })
  in
  let t = sharded.R.Exec.trace in
  checki "all devices accounted for" n
    (sharded.R.Exec.accepted_inputs + sharded.R.Exec.rejected_inputs);
  checki "devices_total gauge" n t.R.Trace.devices_total;
  checki "devices_materialized gauge" 512 t.R.Trace.devices_materialized;
  checki "cohorts_total gauge" 79 t.R.Trace.cohorts_total;
  checki "cohorts_sampled gauge" 2 t.R.Trace.cohorts_sampled;
  checkb "audit passes" true sharded.R.Exec.audit_ok;
  checkb "certificate verifies" true sharded.R.Exec.certificate_ok;
  (* Extrapolated device work covers the whole population, not just the
     materialized slice. *)
  checkb "encrypt ops cover all devices" true
    (t.R.Trace.device_encrypt_ops >= n)

let prop_sharded_equals_full =
  QCheck.Test.make ~name:"sharded == full for random (n, cohort, k, byz)"
    ~count:12
    QCheck.(
      quad (int_range 20 100) (int_range 4 48) (int_range 1 4) (int_range 0 1))
    (fun (n, cohort_size, sampled_cohorts, byz_on) ->
      (* qcheck shrinking can step outside the generator ranges; clamp so a
         shrunk candidate stays a valid configuration (the runtime needs at
         least 4 committees' worth of devices). *)
      let n = max 20 n in
      let cohort_size = max 1 cohort_size in
      let sampled_cohorts = max 1 sampled_cohorts in
      let byz = if byz_on = 1 then 0.2 else 0.0 in
      let full = run_mode ~name:"top1" ~n ~seed:9L ~byz R.Exec.Full in
      let sharded =
        run_mode ~name:"top1" ~n ~seed:9L ~byz
          (R.Exec.Sharded { cohort_size; sampled_cohorts })
      in
      full.R.Exec.outputs = sharded.R.Exec.outputs
      && Arb_dp.Budget.equal full.R.Exec.budget_left sharded.R.Exec.budget_left
      && full.R.Exec.certificate = sharded.R.Exec.certificate
      && full.R.Exec.accepted_inputs = sharded.R.Exec.accepted_inputs
      && full.R.Exec.rejected_inputs = sharded.R.Exec.rejected_inputs)

let prop_sharded_deterministic =
  QCheck.Test.make ~name:"sharded run is a pure function of its seed" ~count:8
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let seed = Int64.of_int seed in
      let go () =
        run_mode ~name:"top1" ~n:64 ~seed ~byz:0.1
          (R.Exec.Sharded { cohort_size = 16; sampled_cohorts = 2 })
      in
      let a = go () and b = go () in
      a.R.Exec.outputs = b.R.Exec.outputs
      && String.equal a.R.Exec.audit_root b.R.Exec.audit_root
      && Arb_util.Json.to_string (R.Trace.to_json a.R.Exec.trace)
         = Arb_util.Json.to_string (R.Trace.to_json b.R.Exec.trace))

let test_sharded_rejects_bad_config () =
  let bad sharding =
    match run_mode ~name:"top1" ~n:64 ~seed:3L ~byz:0.0 sharding with
    | exception R.Exec.Execution_error _ -> true
    | _ -> false
  in
  checkb "cohort_size 0 rejected" true
    (bad (R.Exec.Sharded { cohort_size = 0; sampled_cohorts = 1 }));
  checkb "sampled_cohorts 0 rejected" true
    (bad (R.Exec.Sharded { cohort_size = 16; sampled_cohorts = 0 }))

let () =
  Alcotest.run "arb_scale"
    [
      ( "equivalence",
        [
          Alcotest.test_case "sharded == full (clean)" `Quick
            test_sharded_equals_full_clean;
          Alcotest.test_case "sharded == full (byzantine)" `Quick
            test_sharded_equals_full_byzantine;
          Alcotest.test_case "sharded == full (bounded rows)" `Quick
            test_sharded_equals_full_median;
          qtest prop_sharded_equals_full;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "materializes only sampled cohorts" `Quick
            test_streaming_materializes_only_sampled;
          qtest prop_sharded_deterministic;
          Alcotest.test_case "bad sharding config rejected" `Quick
            test_sharded_rejects_bad_config;
        ] );
    ]
