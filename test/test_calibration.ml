(* Tests for the self-calibrating cost model (lib/planner/calibration):
   versioned JSON round-trips, typed load failures with fall-back to the
   default model, residual recording, and fit recovery of planted
   per-section scales. *)

module P = Arb_planner
module C = P.Calibration
module CM = P.Cost_model
module M = Arb_obs.Metrics
module J = Arb_util.Json

let qtest = QCheck_alcotest.to_alcotest
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let checkf = Alcotest.check (Alcotest.float 1e-9)

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "arb-test-cal-%s-%d.json" name (Unix.getpid ()))

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

(* ---------------- JSON round-trip ---------------- *)

(* A calibration with arbitrary (positive, finite) constants and a
   non-trivial provenance: the shape `fit` actually produces. *)
let arb_calibration =
  let open QCheck in
  let pos = Gen.float_range 1e-9 1e9 in
  let gen =
    Gen.map
      (fun (a, b, c, (d, e, f)) ->
        let d0 = CM.default in
        let constants =
          {
            d0 with
            CM.kg_coeff_time = a;
            dec_coeff_time = b;
            felt_bytes = c;
            round_latency = d;
          }
        in
        let provenance =
          {
            C.p_runs = 3;
            p_skipped = 1;
            p_base = CM.fingerprint d0;
            p_err_before = e;
            p_err_after = f;
            p_sections =
              [
                {
                  C.s_section = "decrypt_time";
                  s_samples = 3;
                  s_scale = b /. d0.CM.dec_coeff_time;
                  s_err_before = e;
                  s_err_after = f;
                };
              ];
          }
        in
        C.make ~provenance constants)
      Gen.(tup4 pos pos pos (tup3 pos pos pos))
  in
  QCheck.make ~print:(fun t -> J.to_string ~pretty:true (C.to_json t)) gen

let prop_json_round_trip =
  QCheck.Test.make ~count:100 ~name:"calibration JSON round-trips exactly"
    arb_calibration (fun t ->
      match C.of_json (C.to_json t) with
      | Error e -> QCheck.Test.fail_report (C.error_message e)
      | Ok t' ->
          t'.C.version = t.C.version
          && t'.C.fingerprint = t.C.fingerprint
          && t'.C.constants = t.C.constants
          && t'.C.provenance = t.C.provenance
          && J.to_string (C.to_json t') = J.to_string (C.to_json t))

let test_save_load () =
  let path = tmp_path "roundtrip" in
  let d0 = CM.default in
  let t = C.make { d0 with CM.kg_coeff_time = d0.CM.kg_coeff_time *. 2.0 } in
  C.save path t;
  match C.load path with
  | Error e -> Alcotest.fail (C.error_message e)
  | Ok t' ->
      checks "fingerprint survives" t.C.fingerprint t'.C.fingerprint;
      checkb "constants survive" true (t'.C.constants = t.C.constants)

(* ---------------- typed failures ---------------- *)

let test_unreadable () =
  let path = tmp_path "missing" in
  if Sys.file_exists path then Sys.remove path;
  (match C.load path with
  | Error (C.Unreadable _) -> ()
  | _ -> Alcotest.fail "missing file should be Unreadable");
  let t, err = C.load_or_default path in
  checks "falls back to default" C.default.C.fingerprint t.C.fingerprint;
  checkb "error surfaced" true (err <> None)

let test_malformed () =
  let path = tmp_path "malformed" in
  write_file path "{not json";
  (match C.load path with
  | Error (C.Malformed _) -> ()
  | _ -> Alcotest.fail "garbage should be Malformed");
  (* Valid JSON, wrong schema. *)
  write_file path "{\"schema\": \"something-else/9\"}";
  (match C.load path with
  | Error (C.Malformed { reason; _ }) ->
      checkb "reason names the schema" true
        (String.length reason > 0)
  | _ -> Alcotest.fail "wrong schema should be Malformed");
  let t, err = C.load_or_default path in
  checks "falls back to default" C.default.C.fingerprint t.C.fingerprint;
  checkb "error surfaced" true (err <> None)

let test_fingerprint_mismatch () =
  let path = tmp_path "tampered" in
  (* Hand-edit a constant without refreshing the fingerprint: the loader
     must reject the file rather than trust a stale fingerprint. *)
  let json =
    match C.to_json C.default with
    | J.Obj fields ->
        J.Obj
          (List.map
             (function
               | "constants", J.Obj cs ->
                   ( "constants",
                     J.Obj
                       (List.map
                          (function
                            | "felt_bytes", _ -> ("felt_bytes", J.Float 999.0)
                            | kv -> kv)
                          cs) )
               | kv -> kv)
             fields)
    | _ -> Alcotest.fail "to_json is not an object"
  in
  write_file path (J.to_string json);
  match C.load path with
  | Error (C.Malformed { reason; _ }) ->
      checkb "reason mentions fingerprint" true
        (String.length reason >= 11 && String.sub reason 0 11 = "fingerprint")
  | _ -> Alcotest.fail "tampered constants should be Malformed"

let test_future_version () =
  let path = tmp_path "future" in
  let json =
    match C.to_json C.default with
    | J.Obj fields ->
        J.Obj
          (List.map
             (function
               | "version", _ -> ("version", J.Int (C.current_version + 1))
               | kv -> kv)
             fields)
    | _ -> Alcotest.fail "to_json is not an object"
  in
  write_file path (J.to_string json);
  (match C.load path with
  | Error (C.Future_version { found; supported; _ }) ->
      checki "found version" (C.current_version + 1) found;
      checki "supported version" C.current_version supported
  | _ -> Alcotest.fail "newer version should be Future_version");
  let t, _ = C.load_or_default path in
  checks "falls back to default" C.default.C.fingerprint t.C.fingerprint

(* ---------------- recording and fitting ---------------- *)

let test_record_and_read_back () =
  let reg = M.create () in
  C.record reg
    [ ("decrypt_time", 10.0, 5.0); ("ops_bytes", 4.0, 8.0) ];
  C.record reg [ ("decrypt_time", 6.0, 3.0) ];
  let samples = List.sort compare (C.samples_of_registry reg) in
  checkb "cumulative totals read back" true
    (samples = [ ("decrypt_time", 16.0, 8.0); ("ops_bytes", 4.0, 8.0) ]);
  (* Residuals landed in the labeled histogram. *)
  checkb "residual histogram populated" true
    (M.histogram_quantile reg
       ~labels:[ ("section", "decrypt_time") ]
       "arb_cal_residual_rel" 0.5
    <> None)

(* Synthetic residuals with planted per-section scales: the fit must
   recover each scale exactly (the model is linear in every scaled
   group), leaving zero post-fit error. *)
let test_fit_recovers_planted_scales () =
  let planted =
    [
      ("keygen_time", 0.25); ("keygen_bytes", 4.0); ("decrypt_time", 2.0);
      ("ops_time", 0.5); ("ops_bytes", 3.0); ("upload_bytes", 8.0);
    ]
  in
  let run magnitude =
    List.map
      (fun (section, scale) ->
        let p = magnitude in
        (section, p, p *. scale))
      planted
  in
  let runs = [ run 10.0; run 20.0; run 40.0 ] in
  match C.fit ~runs () with
  | Error m -> Alcotest.fail m
  | Ok t ->
      let prov = t.C.provenance in
      checki "runs counted" 3 prov.C.p_runs;
      checkf "post-fit error vanishes" 0.0 prov.C.p_err_after;
      checkb "pre-fit error was real" true (prov.C.p_err_before > 0.1);
      List.iter
        (fun f ->
          let want = List.assoc f.C.s_section planted in
          checkf ("scale " ^ f.C.s_section) want f.C.s_scale;
          checkf ("section err " ^ f.C.s_section) 0.0 f.C.s_err_after)
        prov.C.p_sections;
      (* Scales landed on the constants themselves. *)
      let d0 = CM.default in
      checkf "dec_coeff_time scaled" (d0.CM.dec_coeff_time *. 2.0)
        t.C.constants.CM.dec_coeff_time;
      checkf "kg_coeff_time scaled" (d0.CM.kg_coeff_time *. 0.25)
        t.C.constants.CM.kg_coeff_time;
      checkf "felt_bytes scaled" (d0.CM.felt_bytes *. 8.0)
        t.C.constants.CM.felt_bytes;
      (* And the wrapper is internally consistent. *)
      checks "fingerprint matches constants"
        (CM.fingerprint t.C.constants) t.C.fingerprint;
      checks "base fingerprint recorded" (CM.fingerprint d0) prov.C.p_base

let test_fit_no_samples () =
  (match C.fit ~runs:[] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty runs must not fit");
  match C.fit ~runs:[ [ ("decrypt_time", 0.0, 5.0) ] ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero-predicted samples must not fit"

let test_fingerprint_sensitivity () =
  let d0 = CM.default in
  let a = CM.fingerprint d0 in
  let b =
    CM.fingerprint { d0 with CM.felt_bytes = d0.CM.felt_bytes +. 1.0 }
  in
  checkb "fingerprint tracks constants" true (a <> b);
  checki "sha256 hex length" 64 (String.length a)

let () =
  Alcotest.run "calibration"
    [
      ( "json",
        [
          qtest prop_json_round_trip;
          Alcotest.test_case "save/load round-trip" `Quick test_save_load;
        ] );
      ( "failures",
        [
          Alcotest.test_case "unreadable -> typed + default" `Quick
            test_unreadable;
          Alcotest.test_case "malformed -> typed + default" `Quick
            test_malformed;
          Alcotest.test_case "stale fingerprint rejected" `Quick
            test_fingerprint_mismatch;
          Alcotest.test_case "future version -> typed + default" `Quick
            test_future_version;
        ] );
      ( "fit",
        [
          Alcotest.test_case "record + samples_of_registry" `Quick
            test_record_and_read_back;
          Alcotest.test_case "fit recovers planted scales" `Quick
            test_fit_recovers_planted_scales;
          Alcotest.test_case "fit refuses unusable samples" `Quick
            test_fit_no_samples;
          Alcotest.test_case "fingerprint sensitivity" `Quick
            test_fingerprint_sensitivity;
        ] );
    ]
